package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The loader's file selection is load-bearing for every analyzer
// downstream: a _test.go or a build-tagged file slipping in would
// change what the suite sees (and a testdata or reference-repo file
// would drown it in noise). These tests pin the selection rules.

func loadModule(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, pkgs, err := NewLoader(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	return loader, pkgs
}

// TestLoaderExcludesTestFiles: `go list`'s GoFiles never contains
// _test.go files, so the analyzers see only shipping code.
func TestLoaderExcludesTestFiles(t *testing.T) {
	loader, pkgs := loadModule(t)
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := loader.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("%s: test file loaded into %s", name, p.Path)
			}
		}
	}
}

// TestLoaderExcludesLsvdcheckTagged: without -tags lsvdcheck, the
// build-constrained invariant implementation must not load — the
// analyzers vet the default build, and loading both variants would be
// a duplicate-symbol type error anyway.
func TestLoaderExcludesLsvdcheckTagged(t *testing.T) {
	loader, pkgs := loadModule(t)
	var inv *Package
	for _, p := range pkgs {
		if p.Path == "lsvd/internal/invariant" {
			inv = p
		}
	}
	if inv == nil {
		t.Fatal("lsvd/internal/invariant not among loaded packages")
	}
	sawOff := false
	for _, f := range inv.Files {
		name := filepath.Base(loader.Fset.Position(f.Pos()).Filename)
		switch name {
		case "invariant.go":
			t.Error("lsvdcheck-tagged invariant.go loaded without the tag")
		case "invariant_off.go":
			sawOff = true
		}
	}
	if !sawOff {
		t.Error("default-build invariant_off.go missing from the package")
	}
}

// TestLoaderSkipsNonModuleTrees: testdata (the seeded-violation
// packages), vendor, and any related/ reference checkout must never
// appear as analysis targets — go list ignores them, and the analyzer
// gate depends on that staying true.
func TestLoaderSkipsNonModuleTrees(t *testing.T) {
	_, pkgs := loadModule(t)
	for _, p := range pkgs {
		dir := filepath.ToSlash(p.Dir)
		for _, frag := range []string{"/testdata/", "/vendor/", "/related/"} {
			if strings.Contains(dir+"/", frag) {
				t.Errorf("package %s loaded from excluded tree %s", p.Path, p.Dir)
			}
		}
	}
}

// LoadDir serves the self-test harness; its edge cases are a missing
// or empty directory, and stray _test.go files next to testdata
// sources.
func TestLoadDirEdgeCases(t *testing.T) {
	loader, _ := loadModule(t)

	if _, err := loader.LoadDir(filepath.Join(t.TempDir(), "nope"), "x"); err == nil {
		t.Error("missing directory must error")
	}

	empty := t.TempDir()
	if _, err := loader.LoadDir(empty, "x"); err == nil || !strings.Contains(err.Error(), "no .go files") {
		t.Errorf("empty directory: got %v, want 'no .go files'", err)
	}

	// Only non-.go entries: still empty.
	if err := os.WriteFile(filepath.Join(empty, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir(empty, "x"); err == nil {
		t.Error("directory without .go files must error")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte("package p\n\nfunc F() int { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A _test.go in a different package would fail type-checking if it
	// were included; LoadDir must skip it.
	if err := os.WriteFile(filepath.Join(dir, "p_test.go"), []byte("package p_test\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "lsvd/vettest/loaddir")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("want 1 file (p.go only), got %d", len(pkg.Files))
	}
}
