package blockstore

import (
	"errors"
	"fmt"

	"lsvd/internal/block"
	"lsvd/internal/invariant"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
)

// Asynchronous upload pipeline. With Config.UploadDepth > 0, sealing a
// batch only snapshots it and reserves its sequence number under s.mu;
// the object image is marshalled inside the upload goroutine — off the
// batch lock, so the next batch fills (and other volumes' writers run)
// while the previous object is still being built and PUT. Map and
// watermark commit remains strictly in sequence order — an object's
// extents are installed and durableWriteSeq advanced only once every
// earlier object has committed — so DurableWriteSeq and the §3.4
// prefix-consistency rule are exactly as in the synchronous path. A
// crash can strand out-of-order uploads on the backend; recovery's gap
// rule (stop at the first missing sequence number, delete anything
// beyond it) already handles that.

// uploadAttempts bounds automatic resubmission of a failed upload
// within one fence; each explicit Seal/Checkpoint grants a fresh
// budget. It is the same knob as the backend retry policy
// (Config.Retry), so "how hard do we try" is one setting: each PUT
// already retries transient errors inside the Retrier, and the fence
// resubmits a persistently failed object this many times on top.
func (s *Store) uploadAttempts() int { return s.cfg.Retry.Attempts() }

// inflightObj is a sealed object whose PUT has been issued (or failed
// and awaits resubmission) but whose map commit has not yet happened.
type inflightObj struct {
	seq       uint32
	trims     []block.Extent
	coalesced uint64
	maxWrite  uint64
	fill      int64 // client bytes the batch held (for PendingBatch)

	// Build inputs, snapshotted at seal time. The first upload attempt
	// marshals the object vector off s.mu and publishes obj/info/mapped
	// under it (dropping exts/offs); resubmissions reuse the vector,
	// whose payload views keep the batch's staging buffers alive. Only
	// the single active upload goroutine touches these fields between
	// done=false and done=true, so the handoff is race-free.
	b    *batch
	exts []journal.ExtentEntry
	offs []int64

	obj    [][]byte // header + zero-copy payload views
	info   *objInfo
	mapped []mappedExtent

	// ckpt marks this entry as a checkpoint marker rather than a data
	// object (see checkpoint.go). The shot is filled when the marker
	// reaches the front of the list; seq is reserved at queue time so
	// the log stays dense.
	ckpt *ckptShot

	done     bool
	err      error
	attempts int
}

// sealAsyncLocked seals the pending batch into an in-flight object and
// starts its upload. It blocks (releasing no state; the condition
// variable drops s.mu) while the pipeline is at capacity. The periodic
// checkpoint is queued as a pipeline marker, not taken inline: the old
// design drained the pipeline and PUT the checkpoint under s.mu here,
// which was the foreground p999 cliff this marker design removes.
//
//lsvd:requires bs.mu
func (s *Store) sealAsyncLocked() error {
	for s.ckptActive {
		s.commitCond.Wait()
	}
	if err := s.sweepOrphansLocked(); err != nil {
		return err
	}
	if s.batch.empty() {
		return nil
	}
	if err := s.reserveUploadSlotLocked(); err != nil {
		return err
	}
	if s.sinceCkpt >= s.cfg.CheckpointEvery && !s.ckptQueued {
		s.queueCheckpointLocked()
	}

	b := s.batch
	seq := s.nextSeq
	exts, offs := batchExtents(b, seq)
	inf := &inflightObj{
		seq: seq, trims: b.trims, coalesced: b.coalesced,
		maxWrite: b.maxWrite, fill: b.fill,
		b: b, exts: exts, offs: offs,
	}
	s.inflight = append(s.inflight, inf)
	s.inflightBytes += b.fill
	s.batch = newBatch(s.cfg.BatchBytes, s.cfg.NoCoalesce)
	s.nextSeq++
	s.startUploadLocked(inf)
	return nil
}

// queueCheckpointLocked reserves the next sequence number for a
// checkpoint and enqueues it as a marker in the upload pipeline. The
// state snapshot is NOT taken here: it happens when the marker reaches
// the front of the in-flight list — once every earlier object has
// committed — so the checkpoint covers exactly the committed prefix
// without draining the pipeline. sinceCkpt resets now so following
// seals don't queue a second marker, and resets again at snapshot time
// so objects that commit behind the marker (and are therefore inside
// its snapshot) don't count toward the next interval.
//
//lsvd:requires bs.mu
func (s *Store) queueCheckpointLocked() {
	inf := &inflightObj{seq: s.nextSeq, ckpt: &ckptShot{seq: s.nextSeq}}
	s.nextSeq++
	s.sinceCkpt = 0
	s.ckptQueued = true
	s.inflight = append(s.inflight, inf)
	if len(s.inflight) == 1 {
		s.startCheckpointLocked(inf)
	}
}

// startCheckpointLocked snapshots state for a front-of-pipeline
// checkpoint marker (first attempt only) and issues its PUTs on a
// fresh goroutine. Finalization happens on that goroutine, under s.mu,
// BEFORE done is set — so by the time the commit walk dequeues the
// marker, lastCkpt and the deferred-delete release are already applied
// and no object after the marker can commit past an undurable
// checkpoint.
//
//lsvd:requires bs.mu
func (s *Store) startCheckpointLocked(inf *inflightObj) {
	inf.done, inf.err = false, nil
	inf.attempts++
	if inf.attempts > 1 {
		s.stats.uploadRetries++
	}
	shot := inf.ckpt
	if shot.payload == nil {
		if err := s.fillCkptShotLocked(shot); err != nil {
			inf.done, inf.err = true, err
			s.commitCond.Broadcast()
			return
		}
	}
	invariant.Go("blockstore-checkpoint", func() {
		err := s.putCheckpoint(shot)
		s.mu.Lock()
		var post func()
		if err == nil {
			s.finalizeCheckpointLocked(shot)
			inf.done, inf.err = true, nil
			post = s.commitReadyLocked()
		} else {
			inf.done, inf.err = true, err
		}
		s.commitCond.Broadcast()
		s.mu.Unlock()
		if post != nil {
			post()
		}
	})
}

// reserveUploadSlotLocked waits until the in-flight list has room for
// another object (2x UploadDepth, so uploads stay saturated while
// commits lag), resubmitting failed uploads so a stuck front cannot
// wedge the pipeline. Seals that block here are counted: a rising
// SealStalls means the backend (or the upload share) is the wall.
//
//lsvd:requires bs.mu
func (s *Store) reserveUploadSlotLocked() error {
	maxInflight := 2 * s.cfg.UploadDepth
	stalled := false
	for len(s.inflight) >= maxInflight {
		if front := s.inflight[0]; front.done && front.err != nil {
			if front.attempts >= s.uploadAttempts() {
				return fmt.Errorf("blockstore: object %d upload failed after %d attempts: %w", front.seq, front.attempts, front.err)
			}
			s.resubmitFailedLocked()
		}
		if !stalled {
			stalled = true
			s.stats.sealStalls++
		}
		s.commitCond.Wait()
	}
	return nil
}

// startUploadLocked issues (or reissues) the build+PUT for inf on a
// fresh goroutine, bounded by the upload gate. The gate is acquired
// inside the goroutine so the caller never blocks holding s.mu, and
// the object marshal happens under the gate slot too — it is part of
// the upload's cost, and keeping it off s.mu is the point.
//
//lsvd:requires bs.mu
func (s *Store) startUploadLocked(inf *inflightObj) {
	if inf.ckpt != nil {
		s.startCheckpointLocked(inf)
		return
	}
	inf.done, inf.err = false, nil
	inf.attempts++
	if inf.attempts > 1 {
		s.stats.uploadRetries++
	}
	name := objName(s.cfg.Volume, inf.seq)
	obj := inf.obj // non-nil on resubmission: the image is built once
	invariant.Go("blockstore-upload", func() {
		s.gate.Acquire(s.gateID)
		var err error
		if obj == nil {
			var info *objInfo
			var mapped []mappedExtent
			obj, info, mapped, err = s.buildObject(inf.seq, journal.TypeData,
				inf.maxWrite, inf.exts, inf.offs, inf.b.slices)
			if err == nil {
				s.mu.Lock()
				inf.obj, inf.info, inf.mapped = obj, info, mapped
				inf.b, inf.exts, inf.offs = nil, nil, nil
				s.mu.Unlock()
			}
		}
		if err == nil {
			err = objstore.PutVec(s.ctx, s.cfg.Store, name, obj)
		}
		s.gate.Release(s.gateID)
		s.mu.Lock()
		inf.done, inf.err = true, err
		var post func()
		if err == nil {
			post = s.commitReadyLocked()
		}
		s.commitCond.Broadcast()
		s.mu.Unlock()
		if post != nil {
			post()
		}
	})
}

// commitReadyLocked applies, strictly in sequence order, every
// successfully uploaded object at the front of the in-flight list:
// map installation, accounting, durable watermark. It returns a
// closure (nil when there is nothing to do) the caller must run AFTER
// releasing s.mu: the OnDestage callback and the commit-triggered GC
// pass execute off the lock, so a slow callback or a full collection
// cannot stall every later commit, and a callback that reaches back
// into the store cannot deadlock. Called with s.mu held from the
// upload completion path.
//
//lsvd:requires bs.mu
func (s *Store) commitReadyLocked() func() {
	var watermark uint64
	var committed int64
	for len(s.inflight) > 0 {
		inf := s.inflight[0]
		if inf.ckpt != nil {
			if inf.done && inf.err == nil {
				// Already finalized by its goroutine; just dequeue so
				// the objects behind it can commit.
				s.inflight = s.inflight[1:]
				s.ckptQueued = false
				continue
			}
			if inf.attempts == 0 && !s.aborting {
				// The marker just reached the front: every earlier
				// object has committed, snapshot and start the PUTs.
				s.startCheckpointLocked(inf)
			}
			break
		}
		if !inf.done || inf.err != nil {
			break
		}
		s.inflight = s.inflight[1:]
		s.inflightBytes -= inf.fill
		invariant.Assertf(s.inflightBytes >= 0,
			"blockstore: inflight bytes %d negative after committing object %d", s.inflightBytes, inf.info.seq)
		invariant.Assertf(inf.info.seq < s.nextSeq,
			"blockstore: committed object %d at or beyond the unreserved seq %d", inf.info.seq, s.nextSeq)
		s.stats.bytesPut += uint64(objstore.VecLen(inf.obj))
		s.stats.bytesCoalesced += inf.coalesced
		s.installObject(inf.info, inf.mapped, inf.trims)
		committed += int64(inf.info.dataSectors) * block.SectorSize
		if inf.maxWrite > s.durableWriteSeq {
			s.durableWriteSeq = inf.maxWrite
			watermark = s.durableWriteSeq
		}
		s.sinceCkpt++
	}
	if committed > 0 {
		// Foreground payload committed: credit the paced service's WAF
		// bucket and wake it (the commit may have dropped utilization
		// below the low-water mark). With the service running, this
		// replaces the inline commit-triggered pass below.
		s.gcRefillLocked(committed)
	}
	needGC := false
	if !s.gcServiceRunning() && !s.aborting && !s.gcBusy && s.cfg.GCLowWater > 0 &&
		s.utilizationLocked() < s.cfg.GCLowWater {
		// Claim the GC trigger under the lock so concurrent commits
		// start at most one pass; fences wait for it via commitCond.
		needGC = true
		s.gcBusy = true
	}
	cb := s.cfg.OnDestage
	if (watermark == 0 || cb == nil) && !needGC {
		return nil
	}
	return func() {
		if watermark > 0 && cb != nil {
			cb(watermark)
		}
		if needGC {
			s.commitTriggeredGC()
		}
	}
}

// commitTriggeredGC runs the GC pass claimed by commitReadyLocked on
// the upload-completion goroutine, after s.mu was dropped. It already
// owns the gcBusy claim, so it enters gcPassLocked directly (gcLocked
// would wait on its own claim). Failures land in asyncErr and surface
// at the next fence.
func (s *Store) commitTriggeredGC() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.aborting && !s.readOnly {
		if err := s.gcPassLocked(false); err != nil && !errors.Is(err, errGCAborted) && s.asyncErr == nil {
			s.asyncErr = err
		}
	}
	s.gcBusy = false
	s.commitCond.Broadcast()
}

// resubmitFailedLocked reissues every failed upload.
//
//lsvd:requires bs.mu
func (s *Store) resubmitFailedLocked() {
	for _, inf := range s.inflight {
		if inf.done && inf.err != nil {
			s.startUploadLocked(inf)
		}
	}
}

// waitInflightLocked blocks until the in-flight list drains (every
// object committed) and any commit-triggered GC pass finishes,
// resubmitting failures up to the fence attempt budget. On persistent
// failure the object stays in the list so a later fence can retry it;
// the error is returned to the caller.
//
//lsvd:requires bs.mu
func (s *Store) waitInflightLocked() error {
	// Announce the fence so a paced background pass holding gcBusy
	// yields instead of sitting in a budget wait.
	s.fenceEnterLocked()
	defer s.fenceExitLocked()
	for len(s.inflight) > 0 || s.gcBusy {
		if len(s.inflight) > 0 {
			if front := s.inflight[0]; front.done && front.err != nil {
				if front.attempts >= s.uploadAttempts() {
					return fmt.Errorf("blockstore: object %d upload failed after %d attempts: %w", front.seq, front.attempts, front.err)
				}
				s.resubmitFailedLocked()
			}
		}
		s.commitCond.Wait()
	}
	if err := s.asyncErr; err != nil {
		s.asyncErr = nil
		return err
	}
	return nil
}

// sealAndWaitLocked is the synchronous fence: seal the pending batch
// and wait for every in-flight object to commit. Failed uploads get a
// fresh attempt budget. In synchronous mode it is exactly sealLocked.
//
//lsvd:requires bs.mu
func (s *Store) sealAndWaitLocked() error {
	if s.cfg.UploadDepth <= 0 {
		return s.sealLocked()
	}
	for _, inf := range s.inflight {
		if inf.done && inf.err != nil {
			inf.attempts = 0
		}
	}
	s.resubmitFailedLocked()
	if err := s.sealAsyncLocked(); err != nil {
		return err
	}
	return s.waitInflightLocked()
}

// Abort quiesces the pipeline without committing: no new uploads start
// (the store becomes read-only) and Abort returns only once every
// issued PUT has finished, so the backend stops changing. It models
// process death for crash testing — queued batches are dropped, and
// objects that did land out of order are exactly the stranded uploads
// recovery's gap rule cleans up.
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aborting = true
	s.readOnly = true
	// Wake the background GC service (and any budget wait inside a
	// paced pass) so it observes aborting and exits; the gcBusy check
	// below then covers its in-progress pass like any other.
	s.gcCond.Broadcast()
	for {
		busy := s.gcBusy || s.ckptActive
		for _, inf := range s.inflight {
			if inf.ckpt != nil && inf.attempts == 0 {
				// A queued checkpoint marker that never reached the
				// front has no I/O in flight, and the commit walk will
				// not start one while aborting — don't wait for it.
				continue
			}
			if !inf.done {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		s.commitCond.Wait()
	}
}
