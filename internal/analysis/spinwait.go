package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// spinwait flags sleep-poll loops: a for loop whose only way of
// waiting is time.Sleep between polls of some shared state, with a
// state-dependent exit. The shape works, which is why it ships — but
// wake latency is the poll interval, a missed state change costs a
// full period, and the sleeping goroutine cannot be interrupted by
// shutdown (the replication-lag bound waited out its poll interval on
// Kill until it was rebuilt on a broadcast channel). The fix is an
// event the waiter can block on: a close-broadcast channel or a
// sync.Cond.
//
// A loop is a spin-wait only when polling is ALL it does. Any real
// blocking construct (channel op, bare select, WaitGroup/Cond.Wait,
// backend call, or a module callee whose interprocedural summary says
// it can block) means the loop already waits on events. Any
// statement-position call doing real work (a module callee invoked
// for effect, an unresolvable function value) makes it a worker loop
// with pacing, not a wait — the write-cache group-commit leader
// batches under exactly that shape. Value-position calls are the poll
// itself and stay allowed when provably non-blocking: builtins,
// time.Now/Since/Until, sync/atomic loads, short mutex holds,
// invariant-checking helpers, and module functions with an empty
// blocking summary.
func newSpinwait() *Analyzer {
	a := &Analyzer{
		Name: "spinwait",
		Doc:  "no sleep-poll loops: waiting on state changes needs a channel or sync.Cond wakeup, not a time.Sleep poll",
	}
	a.Run = func(pass *Pass) {
		for _, fd := range declaredFuncs(pass) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if loop, ok := n.(*ast.ForStmt); ok {
					checkSpin(pass, loop)
				}
				return true
			})
		}
	}
	return a
}

func checkSpin(pass *Pass, loop *ast.ForStmt) {
	var sleeps []token.Pos
	disqualified := false
	hasExit := loop.Cond != nil

	disqualify := func() { disqualified = true }

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if disqualified {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			// A loop that spawns work, defers cleanup, or builds
			// closures is not a pure wait.
			disqualify()
			return false
		case *ast.SendStmt:
			disqualify()
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				disqualify()
				return false
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				disqualify()
				return false
			}
			// select with default: the comm expressions are a
			// non-blocking poll and stay out of the analysis, but the
			// clause bodies are ordinary loop code — a blocking op or
			// real work in one still changes the loop's nature.
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, st := range cc.Body {
					ast.Inspect(st, visit)
				}
				// A break out of the select's enclosing loop counts as
				// an exit; a bare `return` in a clause body was already
				// seen by the walk above.
			}
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					disqualify()
					return false
				}
			}
		case *ast.ReturnStmt:
			hasExit = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				hasExit = true
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				switch classifySpinCall(pass, call, true) {
				case spinSleep:
					sleeps = append(sleeps, call.Pos())
				case spinBenign:
				default:
					disqualify()
				}
				if disqualified {
					return false
				}
				// Children handled; arguments are value position.
				for _, arg := range call.Args {
					ast.Inspect(arg, spinValueVisitor(pass, &sleeps, disqualify))
				}
				return false
			}
		case *ast.CallExpr:
			// Value position: the poll read.
			switch classifySpinCall(pass, n, false) {
			case spinSleep:
				sleeps = append(sleeps, n.Pos())
			case spinBenign:
			default:
				disqualify()
			}
			if disqualified {
				return false
			}
		}
		return true
	}
	// The condition and post statement are value position: the poll
	// read lives there as often as in the body (`for !s.ready()`), and
	// a blocking call there means the loop already waits on events.
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, spinValueVisitor(pass, &sleeps, disqualify))
	}
	if loop.Post != nil {
		ast.Inspect(loop.Post, spinValueVisitor(pass, &sleeps, disqualify))
	}
	ast.Inspect(loop.Body, visit)

	if disqualified || len(sleeps) == 0 || !hasExit {
		return
	}
	pass.Reportf(sleeps[0], "sleep-poll loop: the only wait here is time.Sleep between polls — wake latency is the poll interval and shutdown cannot interrupt it; block on a broadcast channel or sync.Cond instead")
}

// spinValueVisitor inspects an expression subtree in value position.
func spinValueVisitor(pass *Pass, sleeps *[]token.Pos, disqualify func()) func(ast.Node) bool {
	return func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			disqualify()
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				disqualify()
				return false
			}
		case *ast.CallExpr:
			switch classifySpinCall(pass, n, false) {
			case spinSleep:
				*sleeps = append(*sleeps, n.Pos())
			case spinBenign:
			default:
				disqualify()
				return false
			}
		}
		return true
	}
}

type spinCallClass int

const (
	spinBenign spinCallClass = iota
	spinSleep
	spinWork
)

// classifySpinCall decides whether a call keeps a loop in the
// spin-wait shape. Benign: conversions, builtins, time.Now/Since/
// Until, sync/atomic, plain mutex lock/unlock, the invariant helpers,
// and — in value position only — module functions whose
// interprocedural summary cannot block (the poll read itself). A
// module call in STATEMENT position is invoked for its effect: that
// makes the loop a worker with pacing (the group-commit leader's
// shape), not a wait, whatever its summary says. Everything else —
// blocking callees, unresolvable function values, arbitrary work — is
// spinWork and disqualifies the loop.
func classifySpinCall(pass *Pass, call *ast.CallExpr, stmtPos bool) spinCallClass {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return spinBenign // conversion
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return spinBenign
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
			return spinBenign
		}
	}
	fn := calleeOf(pass.Info, call)
	if fn == nil {
		return spinWork // func value / unresolvable: assume real work
	}
	if desc, isBlocking := blockingCallee(fn); isBlocking {
		if desc == "time.Sleep" {
			return spinSleep
		}
		return spinWork
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return spinWork
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return spinBenign
		}
		return spinWork
	case "sync/atomic":
		return spinBenign
	case "sync":
		// Cond.Wait and WaitGroup.Wait are real waits (Wait is
		// classified blocking above for WaitGroup; Cond deliberately is
		// not, but in a spin loop it still means event-waiting).
		if fn.Name() == "Wait" {
			return spinWork
		}
		return spinBenign
	case "lsvd/internal/invariant":
		return spinBenign
	}
	if isModulePath(pkg.Path()) && pass.IP != nil && !stmtPos {
		if len(pass.IP.AnyBlocking[funcKey(fn)]) == 0 {
			return spinBenign
		}
	}
	return spinWork
}
