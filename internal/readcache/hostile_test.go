package readcache

import (
	"encoding/binary"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/journal"
	"lsvd/internal/simdev"
)

// A persisted-state header whose DataLen would wrap int64 negative (or
// merely exceeds the reserved region) must load as a cold cache, not
// panic allocating. Regression test for the length bounding in
// loadState.
func TestLoadStateHostileDataLen(t *testing.T) {
	for _, hostile := range []uint64{1 << 63, ^uint64(0), 1 << 40} {
		dev := simdev.NewMem(64 * block.MiB)
		// A structurally valid checkpoint header at the persist
		// offset, DataLen then corrupted in place. loadState must
		// reject it on the bound alone — the CRC is never reached.
		rec, err := journal.Encode(&journal.Header{Type: journal.TypeCheckpoint, Seq: 1, DataLen: 0}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(rec[32:], hostile)
		if err := dev.WriteAt(rec, block.BlockSize); err != nil {
			t.Fatal(err)
		}
		c, err := New(dev, Config{})
		if err != nil {
			t.Fatalf("DataLen=%d: New failed: %v", hostile, err)
		}
		// The arena came up cold but fully usable.
		ext := block.Extent{LBA: 64, Sectors: 8}
		data := payload(3, int(ext.Bytes()))
		_ = c.Insert(ext, data)
		if got, full := readBack(t, c, ext); !full || len(got) != len(data) {
			t.Fatalf("DataLen=%d: cache unusable after hostile load", hostile)
		}
	}
}
