package extmap

import (
	"math/rand"
	"testing"

	"lsvd/internal/block"
)

func ext(lba block.LBA, n uint32) block.Extent { return block.Extent{LBA: lba, Sectors: n} }
func tgt(obj uint32, off block.LBA) Target     { return Target{Obj: obj, Off: off} }

func mustInvariants(t *testing.T, m *Map) {
	t.Helper()
	if err := m.checkInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}

func TestEmptyLookup(t *testing.T) {
	m := New()
	runs := m.Lookup(ext(100, 50))
	if len(runs) != 1 || runs[0].Present || runs[0].LBA != 100 || runs[0].Sectors != 50 {
		t.Fatalf("want single hole run, got %+v", runs)
	}
	if m.Len() != 0 || m.MappedSectors() != 0 {
		t.Fatalf("empty map has Len=%d Mapped=%d", m.Len(), m.MappedSectors())
	}
}

func TestSimpleUpdateLookup(t *testing.T) {
	m := New()
	if d := m.Update(ext(10, 20), tgt(1, 100)); len(d) != 0 {
		t.Fatalf("update over hole displaced %+v", d)
	}
	mustInvariants(t, m)
	runs := m.Lookup(ext(0, 50))
	want := []Run{
		{Extent: ext(0, 10)},
		{Extent: ext(10, 20), Target: tgt(1, 100), Present: true},
		{Extent: ext(30, 20)},
	}
	if len(runs) != len(want) {
		t.Fatalf("got %+v want %+v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("run %d: got %+v want %+v", i, runs[i], want[i])
		}
	}
}

func TestOverwriteMiddleSplits(t *testing.T) {
	m := New()
	m.Update(ext(0, 100), tgt(1, 0))
	d := m.Update(ext(40, 20), tgt(2, 0))
	mustInvariants(t, m)
	if len(d) != 1 || d[0].Extent != ext(40, 20) || d[0].Target != tgt(1, 40) {
		t.Fatalf("displaced %+v", d)
	}
	runs := m.Lookup(ext(0, 100))
	want := []Run{
		{Extent: ext(0, 40), Target: tgt(1, 0), Present: true},
		{Extent: ext(40, 20), Target: tgt(2, 0), Present: true},
		{Extent: ext(60, 40), Target: tgt(1, 60), Present: true},
	}
	if len(runs) != 3 {
		t.Fatalf("got %+v", runs)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("run %d: got %+v want %+v", i, runs[i], want[i])
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len=%d want 3", m.Len())
	}
}

func TestAdjacentContiguousMerge(t *testing.T) {
	m := New()
	m.Update(ext(0, 8), tgt(5, 0))
	m.Update(ext(8, 8), tgt(5, 8))
	mustInvariants(t, m)
	if m.Len() != 1 {
		t.Fatalf("contiguous extents not merged: Len=%d", m.Len())
	}
	// Adjacent but non-contiguous targets must NOT merge.
	m.Update(ext(16, 8), tgt(5, 100))
	if m.Len() != 2 {
		t.Fatalf("non-contiguous extents merged: Len=%d", m.Len())
	}
	// Different object must not merge either.
	m.Update(ext(24, 8), tgt(6, 108))
	if m.Len() != 3 {
		t.Fatalf("cross-object extents merged: Len=%d", m.Len())
	}
}

func TestMergeFillsHole(t *testing.T) {
	m := New()
	m.Update(ext(0, 8), tgt(1, 0))
	m.Update(ext(16, 8), tgt(1, 16))
	if m.Len() != 2 {
		t.Fatalf("Len=%d", m.Len())
	}
	// Plugging the hole with the contiguous middle merges all three.
	m.Update(ext(8, 8), tgt(1, 8))
	mustInvariants(t, m)
	if m.Len() != 1 {
		t.Fatalf("hole plug did not merge: Len=%d", m.Len())
	}
	runs := m.Lookup(ext(0, 24))
	if len(runs) != 1 || !runs[0].Present || runs[0].Extent != ext(0, 24) {
		t.Fatalf("got %+v", runs)
	}
}

func TestDelete(t *testing.T) {
	m := New()
	m.Update(ext(0, 100), tgt(1, 0))
	d := m.Delete(ext(25, 50))
	mustInvariants(t, m)
	if len(d) != 1 || d[0].Extent != ext(25, 50) {
		t.Fatalf("displaced %+v", d)
	}
	if m.MappedSectors() != 50 || m.Len() != 2 {
		t.Fatalf("Mapped=%d Len=%d", m.MappedSectors(), m.Len())
	}
	runs := m.Lookup(ext(0, 100))
	if len(runs) != 3 || runs[1].Present {
		t.Fatalf("got %+v", runs)
	}
}

func TestDeleteEverything(t *testing.T) {
	m := New()
	for i := 0; i < 50; i++ {
		m.Update(ext(block.LBA(i*16), 8), tgt(uint32(i+1), 0))
	}
	d := m.Delete(ext(0, 16*50))
	mustInvariants(t, m)
	if len(d) != 50 || m.Len() != 0 || m.MappedSectors() != 0 {
		t.Fatalf("displaced=%d Len=%d Mapped=%d", len(d), m.Len(), m.MappedSectors())
	}
}

func TestUpdateIfConditional(t *testing.T) {
	m := New()
	m.Update(ext(0, 10), tgt(1, 0))
	m.Update(ext(10, 10), tgt(2, 0))
	m.Update(ext(20, 10), tgt(1, 20))
	// GC rewrite of object 1's data into object 9: only object-1
	// portions move; the newer object-2 write must be preserved.
	d := m.UpdateIf(ext(0, 30), tgt(9, 0), func(r Run) bool { return r.Target.Obj == 1 })
	mustInvariants(t, m)
	if len(d) != 2 {
		t.Fatalf("displaced %+v", d)
	}
	runs := m.Lookup(ext(0, 30))
	want := []Run{
		{Extent: ext(0, 10), Target: tgt(9, 0), Present: true},
		{Extent: ext(10, 10), Target: tgt(2, 0), Present: true},
		{Extent: ext(20, 10), Target: tgt(9, 20), Present: true},
	}
	if len(runs) != 3 {
		t.Fatalf("got %+v", runs)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("run %d: got %+v want %+v", i, runs[i], want[i])
		}
	}
}

func TestUpdateIfRejectAllKeepsMap(t *testing.T) {
	m := New()
	m.Update(ext(0, 64), tgt(3, 0))
	d := m.UpdateIf(ext(0, 64), tgt(9, 0), func(Run) bool { return false })
	mustInvariants(t, m)
	if len(d) != 0 {
		t.Fatalf("displaced %+v", d)
	}
	runs := m.Lookup(ext(0, 64))
	if len(runs) != 1 || runs[0].Target != tgt(3, 0) {
		t.Fatalf("got %+v", runs)
	}
}

func TestUpdateIfCoversHoles(t *testing.T) {
	m := New()
	m.Update(ext(10, 10), tgt(2, 0))
	// Conditional update over a range with a hole: the hole is filled,
	// the rejected existing mapping preserved.
	m.UpdateIf(ext(0, 30), tgt(9, 0), func(r Run) bool { return r.Target.Obj == 1 })
	mustInvariants(t, m)
	runs := m.Lookup(ext(0, 30))
	want := []Run{
		{Extent: ext(0, 10), Target: tgt(9, 0), Present: true},
		{Extent: ext(10, 10), Target: tgt(2, 0), Present: true},
		{Extent: ext(20, 10), Target: tgt(9, 20), Present: true},
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("run %d: got %+v want %+v", i, runs[i], want[i])
		}
	}
}

func TestChunkSplitting(t *testing.T) {
	m := New()
	// Insert far more than one chunk's worth of non-mergeable extents.
	for i := 0; i < 4*chunkMax; i++ {
		m.Update(ext(block.LBA(i*10), 5), tgt(uint32(i%7+1), block.LBA(i*1000)))
	}
	mustInvariants(t, m)
	if m.Len() != 4*chunkMax {
		t.Fatalf("Len=%d want %d", m.Len(), 4*chunkMax)
	}
	if len(m.chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(m.chunks))
	}
	// Spot-check lookups across chunk boundaries.
	for i := 0; i < 4*chunkMax; i += 37 {
		runs := m.Lookup(ext(block.LBA(i*10), 5))
		if len(runs) != 1 || !runs[0].Present || runs[0].Target.Off != block.LBA(i*1000) {
			t.Fatalf("entry %d: got %+v", i, runs)
		}
	}
}

func TestCrossChunkRangeDelete(t *testing.T) {
	m := New()
	for i := 0; i < 4*chunkMax; i++ {
		m.Update(ext(block.LBA(i*10), 5), tgt(uint32(i%7+1), block.LBA(i*1000)))
	}
	d := m.Delete(ext(0, uint32(4*chunkMax*10)))
	mustInvariants(t, m)
	if m.Len() != 0 || len(d) != 4*chunkMax {
		t.Fatalf("Len=%d displaced=%d", m.Len(), len(d))
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		m.Update(ext(block.LBA(rng.Intn(1<<16)), uint32(rng.Intn(64)+1)),
			tgt(uint32(rng.Intn(100)+1), block.LBA(rng.Intn(1<<20))))
	}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	n := New()
	if err := n.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, n)
	if n.Len() != m.Len() || n.MappedSectors() != m.MappedSectors() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			n.Len(), n.MappedSectors(), m.Len(), m.MappedSectors())
	}
	var a, b []Run
	m.Foreach(func(e block.Extent, tg Target) bool {
		a = append(a, Run{Extent: e, Target: tg, Present: true})
		return true
	})
	n.Foreach(func(e block.Extent, tg Target) bool {
		b = append(b, Run{Extent: e, Target: tg, Present: true})
		return true
	})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	n := New()
	if err := n.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
	m := New()
	m.Update(ext(0, 10), tgt(1, 0))
	data, _ := m.MarshalBinary()
	if err := n.UnmarshalBinary(data[:len(data)-4]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
	// Zero-length extent: sectors field lives at offset 4(count)+8(start).
	data2, _ := m.MarshalBinary()
	for i := 12; i < 16; i++ {
		data2[i] = 0
	}
	if err := n.UnmarshalBinary(data2); err == nil {
		t.Fatal("zero-length extent accepted")
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.Update(ext(0, 100), tgt(1, 0))
	c := m.Clone()
	c.Update(ext(0, 100), tgt(2, 0))
	runs := m.Lookup(ext(0, 100))
	if runs[0].Target != tgt(1, 0) {
		t.Fatalf("clone mutated original: %+v", runs)
	}
}

// model is a naive sector-granularity reference implementation.
type model map[block.LBA]Target

func (md model) update(e block.Extent, t Target) {
	for i := block.LBA(0); i < block.LBA(e.Sectors); i++ {
		md[e.LBA+i] = t.Shift(i)
	}
}

func (md model) updateIf(e block.Extent, t Target, pred func(Target) bool) {
	for i := block.LBA(0); i < block.LBA(e.Sectors); i++ {
		old, ok := md[e.LBA+i]
		if !ok || pred(old) {
			md[e.LBA+i] = t.Shift(i)
		}
	}
}

func (md model) del(e block.Extent) {
	for i := block.LBA(0); i < block.LBA(e.Sectors); i++ {
		delete(md, e.LBA+i)
	}
}

// TestRandomizedAgainstModel drives the extent map and the naive model
// with the same random operation stream and checks sector-exact
// equivalence, plus structural invariants, after every operation batch.
func TestRandomizedAgainstModel(t *testing.T) {
	const space = 1 << 12 // keep space small to force dense overlap
	rng := rand.New(rand.NewSource(7))
	m := New()
	md := model{}
	randExt := func() block.Extent {
		return ext(block.LBA(rng.Intn(space)), uint32(rng.Intn(200)+1))
	}
	for step := 0; step < 3000; step++ {
		e := randExt()
		tg := tgt(uint32(rng.Intn(5)+1), block.LBA(rng.Intn(1<<20)))
		switch rng.Intn(10) {
		case 0, 1:
			m.Delete(e)
			md.del(e)
		case 2:
			obj := uint32(rng.Intn(5) + 1)
			pred := func(r Run) bool { return r.Target.Obj == obj }
			mpred := func(t Target) bool { return t.Obj == obj }
			m.UpdateIf(e, tg, pred)
			md.updateIf(e, tg, mpred)
		default:
			m.Update(e, tg)
			md.update(e, tg)
		}
		if step%100 == 0 {
			mustInvariants(t, m)
			compareModel(t, m, md, space)
		}
	}
	mustInvariants(t, m)
	compareModel(t, m, md, space+256)
}

func compareModel(t *testing.T, m *Map, md model, space int) {
	t.Helper()
	runs := m.Lookup(ext(0, uint32(space+512)))
	got := model{}
	for _, r := range runs {
		if !r.Present {
			continue
		}
		for i := block.LBA(0); i < block.LBA(r.Sectors); i++ {
			got[r.LBA+i] = r.Target.Shift(i)
		}
	}
	if len(got) != len(md) {
		t.Fatalf("mapped sector count: got %d want %d", len(got), len(md))
	}
	for lba, want := range md {
		if g, ok := got[lba]; !ok || g != want {
			t.Fatalf("sector %d: got %v,%v want %v", lba, g, ok, want)
		}
	}
	if m.MappedSectors() != uint64(len(md)) {
		t.Fatalf("MappedSectors=%d want %d", m.MappedSectors(), len(md))
	}
}

// TestDisplacedAccounting verifies that the sum of displaced sectors
// matches the overlap removed — the invariant the block store's
// live-data accounting depends on.
func TestDisplacedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := New()
	for step := 0; step < 2000; step++ {
		e := ext(block.LBA(rng.Intn(4096)), uint32(rng.Intn(100)+1))
		before := m.MappedSectors()
		d := m.Update(e, tgt(uint32(step%9+1), block.LBA(step*4096)))
		var displacedSectors uint64
		for _, r := range d {
			displacedSectors += uint64(r.Sectors)
		}
		after := m.MappedSectors()
		// after = before - displaced + len(e)
		if after != before-displacedSectors+uint64(e.Sectors) {
			t.Fatalf("step %d: before=%d displaced=%d new=%d after=%d",
				step, before, displacedSectors, e.Sectors, after)
		}
	}
}

func BenchmarkUpdateDense(b *testing.B) {
	m := New()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := ext(block.LBA(rng.Intn(1<<22)), 32)
		m.Update(e, tgt(uint32(i%1000+1), block.LBA(i*32)))
	}
}

func BenchmarkLookup(b *testing.B) {
	m := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		m.Update(ext(block.LBA(rng.Intn(1<<22)), 32), tgt(uint32(i%1000+1), block.LBA(i*32)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lookup(ext(block.LBA(rng.Intn(1<<22)), 64))
	}
}

func BenchmarkLookupAppend(b *testing.B) {
	m := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		m.Update(ext(block.LBA(rng.Intn(1<<22)), 32), tgt(uint32(i%1000+1), block.LBA(i*32)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	var buf []Run
	for i := 0; i < b.N; i++ {
		buf = m.LookupAppend(buf[:0], ext(block.LBA(rng.Intn(1<<22)), 64))
	}
}

func TestLookupAppendMatchesLookup(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		switch rng.Intn(4) {
		case 0:
			m.Delete(ext(block.LBA(rng.Intn(1<<16)), uint32(rng.Intn(200)+1)))
		default:
			m.Update(ext(block.LBA(rng.Intn(1<<16)), uint32(rng.Intn(200)+1)), tgt(uint32(i%100+1), block.LBA(i)))
		}
	}
	mustInvariants(t, m)
	buf := make([]Run, 0, 8)
	for i := 0; i < 2000; i++ {
		e := ext(block.LBA(rng.Intn(1<<16)), uint32(rng.Intn(400)+1))
		want := m.Lookup(e)
		if got := m.Lookup(e); cap(got) > 0 && len(got) > cap(got) {
			t.Fatalf("lookup realloc: len %d cap %d", len(got), cap(got))
		}
		buf = m.LookupAppend(buf[:0], e)
		if len(buf) != len(want) {
			t.Fatalf("extent %v: LookupAppend %d runs, Lookup %d", e, len(buf), len(want))
		}
		for j := range want {
			if buf[j] != want[j] {
				t.Fatalf("extent %v run %d: got %+v want %+v", e, j, buf[j], want[j])
			}
		}
		// Prefix of buf untouched by future reslices: also check a
		// non-empty dst prefix is preserved.
		pre := append([]Run(nil), want...)
		both := m.LookupAppend(pre, e)
		if len(both) != 2*len(want) {
			t.Fatalf("extent %v: append to prefix gave %d runs, want %d", e, len(both), 2*len(want))
		}
		for j := range want {
			if both[j] != want[j] || both[len(want)+j] != want[j] {
				t.Fatalf("extent %v: prefix not preserved", e)
			}
		}
	}
}
