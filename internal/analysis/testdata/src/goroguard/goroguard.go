// Package goroguard is the golden self-test for the goroguard
// analyzer: every spawned goroutine needs a panic guard as its first
// statement (or an invariant.Go spawn, which is a plain call and
// therefore trivially clean).
package goroguard

import "fmt"

func nakedCall() {
	go fmt.Println("x") // want "goroutine without a panic guard"
}

func nakedLiteral() {
	go func() { // want "goroutine without a panic guard"
		fmt.Println("y")
	}()
}

func guarded() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				fmt.Println("recovered:", r)
			}
		}()
		fmt.Println("z")
	}()
}

func guardNotFirst() {
	go func() { // want "goroutine without a panic guard"
		fmt.Println("work before the guard is a window with no guard")
		defer func() { _ = recover() }()
	}()
}

func deferWithoutRecover() {
	go func() { // want "goroutine without a panic guard"
		defer func() { fmt.Println("bye") }()
	}()
}

func sanctionedDetached() {
	//lsvd:ignore self-test: fire-and-forget logging goroutine
	go fmt.Println("w")
}
