package blockstore

import (
	"fmt"
	"sort"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/invariant"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
)

// batch accumulates client writes until sealed into an object. Writes
// within a batch may be coalesced — overwritten bytes never reach the
// backend — which is safe because the object is stored atomically
// (§3.1: "Writes may thus be coalesced within a single batch, although
// not across batches").
//
// The batch holds REFERENCES to the payloads it is given (segs), laid
// out at virtual offsets in arrival order; nothing is copied until the
// object image is gathered at build time. Append's callers therefore
// hand over ownership of the data.
type batch struct {
	capBytes   int64
	segs       [][]byte // payload references, arrival order
	segOffs    []int64  // virtual offset of each segment
	fill       int64
	m          *extmap.Map // vLBA -> virtual offset (sectors), coalescing index
	noCoalesce bool
	raw        []journal.ExtentEntry // no-coalesce mode: extents in arrival order
	rawOffs    []int64
	trims      []block.Extent
	maxWrite   uint64 // newest client writeSeq in the batch
	coalesced  uint64 // bytes displaced by intra-batch overwrites
	writes     int
}

func newBatch(capBytes int64, noCoalesce bool) *batch {
	return &batch{capBytes: capBytes, m: extmap.New(), noCoalesce: noCoalesce}
}

func (b *batch) empty() bool { return b.writes == 0 && len(b.trims) == 0 }

// slices appends zero-copy views of n bytes of batch payload starting
// at virtual offset off to vec. The views alias the staging buffers
// the batch retained at Append, which flow to the store uncopied —
// the ownership handoff documented on Append is what makes that safe.
// Extent targets never span segments (coalescing splits runs but a
// run's bytes always come from one write), yet the loop handles
// crossings anyway — correctness should not hang on that reasoning.
func (b *batch) slices(vec [][]byte, off, n int64) [][]byte {
	i := sort.Search(len(b.segOffs), func(i int) bool { return b.segOffs[i] > off }) - 1
	for n > 0 {
		seg := b.segs[i][off-b.segOffs[i]:]
		if int64(len(seg)) > n {
			seg = seg[:n]
		}
		vec = append(vec, seg)
		off += int64(len(seg))
		n -= int64(len(seg))
		i++
	}
	return vec
}

func (b *batch) add(writeSeq uint64, ext block.Extent, data []byte) {
	off := b.fill
	b.segs = append(b.segs, data)
	b.segOffs = append(b.segOffs, off)
	b.fill += int64(len(data))
	if b.noCoalesce {
		b.raw = append(b.raw, journal.ExtentEntry{LBA: ext.LBA, Sectors: ext.Sectors})
		b.rawOffs = append(b.rawOffs, off)
	} else {
		displaced := b.m.Update(ext, extmap.Target{Off: block.LBAFromBytes(off)})
		for _, r := range displaced {
			b.coalesced += uint64(r.Bytes())
		}
	}
	if writeSeq > b.maxWrite {
		b.maxWrite = writeSeq
	}
	b.writes++
}

func (b *batch) addTrim(writeSeq uint64, ext block.Extent) {
	b.trims = append(b.trims, ext)
	if !b.noCoalesce {
		displaced := b.m.Delete(ext)
		for _, r := range displaced {
			b.coalesced += uint64(r.Bytes())
		}
	}
	if writeSeq > b.maxWrite {
		b.maxWrite = writeSeq
	}
}

// Append buffers one client write; the batch is sealed into a backend
// object when it reaches the configured size (§3.2). The store takes
// ownership of data — it keeps a reference until the object holding it
// commits — so the caller must not modify the buffer after Append.
func (s *Store) Append(writeSeq uint64, ext block.Extent, data []byte) error {
	if int64(len(data)) != ext.Bytes() {
		return fmt.Errorf("blockstore: extent %v does not match %d data bytes", ext, len(data))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	s.batch.add(writeSeq, ext, data)
	s.stats.bytesAppended += uint64(len(data))
	if s.batch.fill >= s.cfg.BatchBytes {
		if s.cfg.UploadDepth > 0 {
			return s.sealAsyncLocked()
		}
		return s.sealLocked()
	}
	return nil
}

// Trim buffers a discard.
func (s *Store) Trim(writeSeq uint64, ext block.Extent) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	s.batch.addTrim(writeSeq, ext)
	return nil
}

// Seal forces the current batch out as an object (used on commit
// pressure and at shutdown). In asynchronous mode it is also the
// pipeline fence: it returns only once every in-flight object has
// committed, so DurableWriteSeq covers everything appended so far.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	return s.sealAndWaitLocked()
}

// SealAsync pushes the current batch into the upload pipeline without
// fencing: it returns once the object is queued, and the commit lands
// in the background, advancing DurableWriteSeq (and firing OnDestage)
// when it does. Core uses it as the ring-full "kick" — the records
// pinning the cache-log head go out as an object while the writer
// waits for the destage watermark, without draining the pipeline. In
// synchronous mode it is a plain seal.
func (s *Store) SealAsync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	if s.cfg.UploadDepth > 0 {
		return s.sealAsyncLocked()
	}
	return s.sealLocked()
}

// batchExtents flattens a batch's extent state for object building:
// trim markers first, then data extents (arrival order in no-coalesce
// mode, map order otherwise) paired with their virtual batch offsets.
func batchExtents(b *batch, seq uint32) (exts []journal.ExtentEntry, offs []int64) {
	for _, t := range b.trims {
		exts = append(exts, journal.ExtentEntry{LBA: t.LBA, Sectors: t.Sectors, SrcSeq: trimMarker})
	}
	if b.noCoalesce {
		for i, e := range b.raw {
			e.SrcSeq = uint64(seq)
			exts = append(exts, e)
			offs = append(offs, b.rawOffs[i])
		}
	} else {
		b.m.Foreach(func(ext block.Extent, t extmap.Target) bool {
			exts = append(exts, journal.ExtentEntry{LBA: ext.LBA, Sectors: ext.Sectors, SrcSeq: uint64(seq)})
			offs = append(offs, t.Off.Bytes())
			return true
		})
	}
	return exts, offs
}

// sealLocked builds the object for the pending batch, PUTs it, updates
// the map and accounting, then runs checkpoint/GC policy.
//
//lsvd:requires bs.mu
func (s *Store) sealLocked() error {
	// A synchronous checkpoint may have dropped s.mu for its PUTs;
	// reserving a sequence number during that window would defeat its
	// failure rollback (see checkpointLocked).
	for s.ckptActive {
		s.commitCond.Wait()
	}
	if err := s.sweepOrphansLocked(); err != nil {
		return err
	}
	b := s.batch
	if b.empty() {
		return nil
	}

	seq := s.nextSeq
	exts, offs := batchExtents(b, seq)
	obj, info, mapped, err := s.buildObject(seq, journal.TypeData, b.maxWrite, exts, offs, b.slices)
	if err != nil {
		return err
	}
	//lsvd:ignore sync mode seals inline under mu by design; async mode routes through the upload pipeline
	if err := objstore.PutVec(s.ctx, s.cfg.Store, objName(s.cfg.Volume, seq), obj); err != nil {
		return err
	}
	s.stats.bytesPut += uint64(objstore.VecLen(obj))
	s.stats.bytesCoalesced += b.coalesced
	s.installObject(info, mapped, b.trims)

	if b.maxWrite > s.durableWriteSeq {
		s.durableWriteSeq = b.maxWrite
		if s.cfg.OnDestage != nil {
			s.cfg.OnDestage(s.durableWriteSeq)
		}
	}

	s.batch = newBatch(s.cfg.BatchBytes, s.cfg.NoCoalesce)
	s.nextSeq++
	s.sinceCkpt++

	if s.sinceCkpt >= s.cfg.CheckpointEvery {
		if err := s.checkpointLocked(); err != nil {
			return err
		}
	}
	if s.gcServiceRunning() {
		// The paced service owns GC triggering: credit its WAF bucket
		// for the committed payload and let it wake on its own.
		s.gcRefillLocked(int64(info.dataSectors) * block.SectorSize)
	} else if s.cfg.GCLowWater > 0 && s.utilizationLocked() < s.cfg.GCLowWater {
		if err := s.gcLocked(); err != nil {
			return err
		}
	}
	return nil
}

// buildObject assembles an object image as a VECTOR: the encoded
// header (padded to a sector boundary so data offsets are
// sector-addressable) followed by zero-copy views of each non-trim
// extent's payload, produced by slices(vec, srcOff, n) from the
// caller's payload store. No contiguous image is materialized — the
// CRC runs over the pieces (journal.EncodeHeader) and the store
// receives the vector (objstore.PutVec), so payload bytes are not
// copied at all between the write-path staging buffers and the
// backend. It returns the vector, the object's table entry, and the
// data extents paired with their in-object sector offsets for map
// installation. It reads no Store state and is safe to call without
// s.mu.
type mappedExtent struct {
	ext    block.Extent
	srcSeq uint64
	target extmap.Target
}

func (s *Store) buildObject(seq uint32, typ journal.Type, writeSeq uint64, exts []journal.ExtentEntry, offs []int64, slices func(vec [][]byte, srcOff, n int64) [][]byte) ([][]byte, *objInfo, []mappedExtent, error) {
	hdrBytes := journal.HeaderSize(len(exts))
	hdrBytes = (hdrBytes + block.SectorSize - 1) &^ (block.SectorSize - 1)
	hdrSectors := uint32(hdrBytes / block.SectorSize)

	vec := make([][]byte, 1, 1+len(offs))
	var mapped []mappedExtent
	cursor := int64(0)
	di := 0 // index into offs (non-trim extents only)
	for _, e := range exts {
		if e.SrcSeq == trimMarker {
			continue
		}
		n := int64(e.Sectors) << block.SectorShift
		vec = slices(vec, offs[di], n)
		mapped = append(mapped, mappedExtent{
			ext:    block.Extent{LBA: e.LBA, Sectors: e.Sectors},
			srcSeq: e.SrcSeq,
			target: extmap.Target{Obj: seq, Off: block.LBA(hdrSectors) + block.LBAFromBytes(cursor)},
		})
		cursor += n
		di++
	}

	h := &journal.Header{Type: typ, Seq: uint64(seq), WriteSeq: writeSeq, Extents: exts, DataLen: uint64(cursor)}
	hdr, err := journal.EncodeHeader(h, block.SectorSize, vec[1:]...)
	if err != nil {
		return nil, nil, nil, err
	}
	vec[0] = hdr

	info := &objInfo{
		seq: seq, typ: typ, totalBytes: int64(hdrBytes) + cursor,
		hdrSectors: hdrSectors, dataSectors: uint32(cursor >> block.SectorShift),
		liveSectors: uint32(cursor >> block.SectorShift), writeSeq: writeSeq,
	}
	return vec, info, mapped, nil
}

// installObject applies a sealed object's effects to the map and the
// object table. trims lists trim extents to apply first. Fresh data
// extents (srcSeq == own seq) use unconditional updates; GC-copied
// extents install only where the map still points at their exact source
// object; GC zero-fill plugs (srcSeq == 0) fill still-unmapped holes
// only. Both conditional forms hold for crash replay as well as the
// live path, so a GC object can never clobber newer data.
//
//lsvd:requires bs.mu
func (s *Store) installObject(info *objInfo, mapped []mappedExtent, trims []block.Extent) {
	invariant.Assertf(s.objects[info.seq] == nil,
		"blockstore: object %d installed twice", info.seq)
	// Register the object (and its utilization contribution) before
	// any map update: in no-coalesce mode an object's own extents
	// overlap, so displacement accounting must already see it.
	s.objects[info.seq] = info
	// This is the commit point for data and GC objects — the one place
	// the object becomes visible to readers and recovery — so it is
	// also where the replication feed learns about it (ship.go rule 1).
	s.shipPublishLocked(info.seq, info.typ, info.totalBytes)
	if s.utilCounted(info) {
		s.utilLive += uint64(info.liveSectors)
		s.utilData += uint64(info.dataSectors)
	}
	for _, t := range trims {
		s.applyDisplaced(s.m.Delete(t))
	}
	for _, me := range mapped {
		var displaced []extmap.Run
		if me.srcSeq == uint64(info.seq) {
			displaced = s.m.Update(me.ext, me.target)
		} else if me.srcSeq == 0 {
			// Zero-fill plug: zeros read as zeros whether mapped or not,
			// so filling holes is a pure no-op semantically — but any
			// range that IS mapped (a write that landed during the GC's
			// lock drops, or, on replay, a lower-seq data object that
			// committed after the pass sampled the map) holds newer data
			// and must win. Portions that stayed holes count as live;
			// the rest of the extent is dead at birth.
			var filled uint32
			for _, r := range s.m.Lookup(me.ext) {
				if !r.Present {
					filled += r.Sectors
				}
			}
			s.applyDisplaced(s.m.UpdateIf(me.ext, me.target, func(extmap.Run) bool { return false }))
			if gap := me.ext.Sectors - filled; gap > 0 && info.liveSectors >= gap {
				info.liveSectors -= gap
				if s.utilCounted(info) {
					s.utilLive -= uint64(gap)
				}
			}
			continue
		} else {
			// Install only where the map still points at the exact object
			// this range was copied from. A <= comparison is NOT
			// equivalent: once GC objects exist, container sequence no
			// longer orders data by freshness — a GC object's copy of old
			// data carries a seq above that of later data objects, so
			// "current target below my source" can hold while the current
			// target is the newer write (collect a GC victim whose hole
			// was plugged, replay, and the stale plug would resurrect
			// over the newer object's data).
			src := me.srcSeq
			displaced = s.m.UpdateExisting(me.ext, me.target, func(r extmap.Run) bool {
				return uint64(r.Target.Obj) == src
			})
			// Conditional updates may install less than the full
			// extent; adjust live accounting to what actually mapped.
			var installed uint32
			for _, d := range displaced {
				installed += d.Sectors
			}
			if gap := me.ext.Sectors - installed; gap > 0 && info.liveSectors >= gap {
				info.liveSectors -= gap
				if s.utilCounted(info) {
					s.utilLive -= uint64(gap)
				}
			}
		}
		s.applyDisplaced(displaced)
	}
	s.hdrCache[info.seq] = &hdrEntry{extents: extentEntries(mapped, trims, info), hdrSectors: info.hdrSectors}
	s.pruneHdrCache()
}

func extentEntries(mapped []mappedExtent, trims []block.Extent, info *objInfo) []journal.ExtentEntry {
	out := make([]journal.ExtentEntry, 0, len(mapped)+len(trims))
	for _, t := range trims {
		out = append(out, journal.ExtentEntry{LBA: t.LBA, Sectors: t.Sectors, SrcSeq: trimMarker})
	}
	for _, me := range mapped {
		out = append(out, journal.ExtentEntry{LBA: me.ext.LBA, Sectors: me.ext.Sectors, SrcSeq: me.srcSeq})
	}
	return out
}

const hdrCacheMax = 256

func (s *Store) pruneHdrCache() {
	if len(s.hdrCache) <= hdrCacheMax {
		return
	}
	// Simple pressure valve: drop arbitrary entries down to half.
	for seq := range s.hdrCache {
		delete(s.hdrCache, seq)
		if len(s.hdrCache) <= hdrCacheMax/2 {
			break
		}
	}
}
