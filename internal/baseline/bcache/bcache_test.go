package bcache

import (
	"bytes"
	"math/rand"
	"testing"

	"lsvd/internal/baseline/rbd"
	"lsvd/internal/block"
	"lsvd/internal/cluster"
	"lsvd/internal/iomodel"
	"lsvd/internal/simdev"
)

func newCache(t *testing.T, cacheBytes int64) (*Cache, *simdev.Metered, *cluster.Pool) {
	t.Helper()
	pool, err := cluster.New(cluster.SSDConfig1())
	if err != nil {
		t.Fatal(err)
	}
	backing, err := rbd.New(rbd.Options{Volume: "img", Pool: pool, VolBytes: 256 * block.MiB})
	if err != nil {
		t.Fatal(err)
	}
	dev := simdev.NewMetered(simdev.NewMem(cacheBytes), iomodel.NVMeP3700)
	c, err := New(Options{Dev: dev, Backing: backing})
	if err != nil {
		t.Fatal(err)
	}
	return c, dev, pool
}

func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestRoundTripThroughCache(t *testing.T) {
	c, _, _ := newCache(t, 64*block.MiB)
	data := payload(1, 64*1024)
	if err := c.WriteAt(data, 4<<20); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.ReadAt(got, 4<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if c.Stats().CacheHitSectors == 0 {
		t.Fatal("read not from cache")
	}
}

func TestMissReadsBacking(t *testing.T) {
	c, _, _ := newCache(t, 64*block.MiB)
	data := payload(2, 32*1024)
	// Populate backing directly, bypassing the cache.
	if err := c.opts.Backing.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("miss path wrong")
	}
	if c.Stats().MissSectors == 0 {
		t.Fatal("miss not counted")
	}
	// Second read: hit.
	before := c.Stats().MissSectors
	_ = c.ReadAt(got, 0)
	if c.Stats().MissSectors != before {
		t.Fatal("second read missed")
	}
}

func TestCommitBarrierWritesMetadata(t *testing.T) {
	c, dev, _ := newCache(t, 64*block.MiB)
	// Touch several distinct B-tree nodes.
	for i := 0; i < 8; i++ {
		if err := c.WriteAt(payload(int64(i), 4096), int64(i)*(8<<20)); err != nil {
			t.Fatal(err)
		}
	}
	before := dev.Meter.Snapshot()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	delta := dev.Meter.Snapshot().Sub(before)
	// Unlike LSVD (one flush, zero writes), bcache persists dirty
	// index nodes at the barrier.
	if delta.WriteOps == 0 {
		t.Fatal("commit barrier wrote no metadata")
	}
	if delta.Flushes != 1 {
		t.Fatalf("flushes=%d", delta.Flushes)
	}
	// A second flush with nothing dirty writes nothing.
	before = dev.Meter.Snapshot()
	_ = c.Flush()
	delta = dev.Meter.Snapshot().Sub(before)
	if delta.WriteOps != 0 {
		t.Fatal("idle barrier still wrote metadata")
	}
}

func TestWriteBackDrainsDirty(t *testing.T) {
	c, _, pool := newCache(t, 64*block.MiB)
	for i := 0; i < 16; i++ {
		_ = c.WriteAt(payload(int64(i), 16*1024), int64(i)*(1<<20))
	}
	if c.DirtyBytes() == 0 {
		t.Fatal("no dirty data")
	}
	// No backend traffic yet: write-back is load-gated.
	if pool.Totals().WriteOps != 0 {
		t.Fatal("write-back ran during load")
	}
	if err := c.WriteBack(1 << 62); err != nil {
		t.Fatal(err)
	}
	if c.DirtyBytes() != 0 {
		t.Fatal("dirty data left after write-back")
	}
	if pool.Totals().WriteOps == 0 {
		t.Fatal("write-back produced no backend I/O")
	}
	// Backing now holds the data.
	got := make([]byte, 16*1024)
	if err := c.opts.Backing.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload(0, 16*1024)) {
		t.Fatal("backing data wrong after write-back")
	}
}

func TestWriteBackIsLBAOrderNotArrivalOrder(t *testing.T) {
	c, _, _ := newCache(t, 64*block.MiB)
	// Write high LBA first, then low LBA; partial write-back must
	// destage the LOW LBA first — the prefix-consistency violation.
	_ = c.WriteAt(payload(1, 4096), 32<<20)
	_ = c.WriteAt(payload(2, 4096), 0)
	if err := c.WriteBack(4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	_ = c.opts.Backing.ReadAt(got, 0)
	if !bytes.Equal(got, payload(2, 4096)) {
		t.Fatal("low LBA not written back first")
	}
	_ = c.opts.Backing.ReadAt(got, 32<<20)
	if bytes.Equal(got, payload(1, 4096)) {
		t.Fatal("budget ignored: both extents written back")
	}
}

func TestCacheFullForcesWriteback(t *testing.T) {
	c, _, pool := newCache(t, 4*block.MiB)
	for i := 0; i < 200; i++ {
		if err := c.WriteAt(payload(int64(i), 64*1024), int64(i%64)*(1<<20)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("full cache never evicted")
	}
	if pool.Totals().WriteOps == 0 {
		t.Fatal("forced write-back produced no backend I/O")
	}
}

func TestCrashLosesCacheOnly(t *testing.T) {
	c, _, _ := newCache(t, 64*block.MiB)
	_ = c.WriteAt(payload(1, 4096), 0)
	_ = c.WriteBack(1 << 62)
	_ = c.WriteAt(payload(2, 4096), 4096) // dirty, never written back
	backing := c.Crash()
	got := make([]byte, 4096)
	_ = backing.ReadAt(got, 0)
	if !bytes.Equal(got, payload(1, 4096)) {
		t.Fatal("written-back data lost")
	}
	_ = backing.ReadAt(got, 4096)
	if bytes.Equal(got, payload(2, 4096)) {
		t.Fatal("un-destaged data survived the crash")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("nil options accepted")
	}
}
