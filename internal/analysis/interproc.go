package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The interprocedural layer: a module-wide call graph over the loaded
// target packages plus per-function effect summaries, computed
// bottom-up over strongly-connected components. The summaries answer,
// for every function F the module declares:
//
//   - Blocking[F][L]: the potentially-blocking operations reachable
//     from F while the caller's annotated lock L is *still* held —
//     modeling F releasing and re-acquiring the caller's lock (the
//     blockstore's lock-drop protocol), which is why the summary is
//     per-lock rather than a single bit.
//   - Acquired[F][L]: the annotated locks F (transitively) acquires
//     while the caller's L is still held — the edge source for
//     lockorder's acquired-before graph.
//   - AnyBlocking[F]: the blocking operations reachable from F on
//     F's own goroutine with no assumptions about locks. Spawned
//     goroutine bodies are excluded: a function that starts a blocking
//     worker does not itself block.
//   - Requires[F]: the //lsvd:requires contract — locks the caller
//     must hold on entry.
//
// Dynamic calls are handled conservatively: a call through a function
// value or an interface method cannot be resolved, so no summary flows
// through it (callers must not assume it is pure — consumers that need
// soundness on that front, like spinwait, treat unresolvable calls as
// disqualifying). Function literals that escape or run on their own
// goroutine are walked as independent roots, exactly as in the flow
// walker. Calls into packages outside the analyzed target set resolve
// to empty summaries.
type Interproc struct {
	// Funcs indexes every declared function in the target set by its
	// stable key (types.Func.FullName).
	Funcs map[string]*ipFunc
	// Requires: declared //lsvd:requires contracts, keyed like Funcs.
	Requires map[string][]string
	// Blocking[fn][lock]: blocking ops reachable while the caller's
	// lock is still held. Includes transitive reach through calls.
	Blocking map[string]map[string]map[blockEntry]bool
	// Acquired[fn][lock]: annotated locks acquired while the caller's
	// lock is still held. Includes transitive reach through calls.
	Acquired map[string]map[string]map[string]bool
	// AnyBlocking[fn]: blocking ops reachable from fn regardless of
	// locks, own-goroutine only. Includes transitive reach.
	AnyBlocking map[string]map[blockEntry]bool
	// Locks: the module-wide annotated lock names.
	Locks []string
	// SCCs: the call-graph components in bottom-up (callee-first)
	// order, for tests and debugging.
	SCCs [][]string
}

// blockEntry is one potentially-blocking operation in a summary.
type blockEntry struct {
	desc string
	pos  token.Pos
}

// ipFunc is one call-graph node.
type ipFunc struct {
	key  string
	fn   *types.Func
	decl *ast.FuncDecl
	pass *Pass // bare per-package context for walking

	calls   map[string]bool // resolved module callees, own goroutine
	callPos map[string]token.Pos
	touches map[string]bool // locks whose Lock/Unlock the body may manipulate

	// Base facts (direct effects only; never mutated by propagation).
	acquires map[string]bool // locks acquired anywhere in the body
	anyBlock map[blockEntry]bool

	// Propagated facts. anyBlockAll is the transitive closure of
	// anyBlock over calls; it must stay separate from anyBlock because
	// the per-lock views below fall back to the *base* facts for
	// untouched locks — folding transitive entries into that fallback
	// would attribute a callee's blocking to "while L held" even when
	// the callee only reaches it after dropping L.
	anyBlockAll map[blockEntry]bool
	callsHeld   map[string]map[string]bool // lock -> callees invoked while it is held
	blockHeld   map[string]map[blockEntry]bool
	acqHeld     map[string]map[string]bool
}

func funcKey(fn *types.Func) string { return fn.FullName() }

// buildInterproc computes the call graph and effect summaries for the
// target packages. anns is parallel to pkgs.
func buildInterproc(l *Loader, pkgs []*Package, anns []*Annotations) *Interproc {
	ip := &Interproc{
		Funcs:       make(map[string]*ipFunc),
		Requires:    make(map[string][]string),
		Blocking:    make(map[string]map[string]map[blockEntry]bool),
		Acquired:    make(map[string]map[string]map[string]bool),
		AnyBlocking: make(map[string]map[blockEntry]bool),
	}
	if len(pkgs) > 0 {
		ip.Locks = append([]string(nil), anns[0].Global.LockNames...)
	}

	// Index every declared function and resolve its //lsvd:requires.
	for i, p := range pkgs {
		pass := &Pass{Fset: l.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info, Ann: anns[i]}
		for fn, fd := range declaredFuncs(pass) {
			key := funcKey(fn)
			ip.Funcs[key] = &ipFunc{key: key, fn: fn, decl: fd, pass: pass}
			if req := anns[i].Requires[fn]; len(req) > 0 {
				ip.Requires[key] = uniqStrings(req)
			}
		}
	}

	// Base facts: one unlocked walk per function (call edges, blocking
	// ops, acquisitions, lock-field touches), then one extra walk per
	// (function, lock) pair for the locks the body actually
	// manipulates. For every untouched lock the base facts are exact:
	// a function that never names L cannot release the caller's L, so
	// "while L is held" covers its whole own-goroutine extent.
	for _, f := range ip.Funcs {
		f.calls = make(map[string]bool)
		f.callPos = make(map[string]token.Pos)
		f.acquires = make(map[string]bool)
		f.anyBlock = make(map[blockEntry]bool)
		f.callsHeld = make(map[string]map[string]bool)
		f.blockHeld = make(map[string]map[blockEntry]bool)
		f.acqHeld = make(map[string]map[string]bool)
		f.touches = touchedLocks(f.pass, f.decl)

		walkFunc(f.pass, f.decl.Body, nil, flowEvents{
			onAnyBlocking: func(pos token.Pos, desc string) {
				f.anyBlock[blockEntry{desc, pos}] = true
			},
			onAnyCall: func(pos token.Pos, callee *types.Func) {
				k := funcKey(callee)
				f.calls[k] = true
				if _, ok := f.callPos[k]; !ok {
					f.callPos[k] = pos
				}
			},
			onAcquire: func(pos token.Pos, lock string, held []string) {
				f.acquires[lock] = true
			},
		})

		for lock := range f.touches {
			lock := lock
			ents := make(map[blockEntry]bool)
			calls := make(map[string]bool)
			acq := make(map[string]bool)
			walkFunc(f.pass, f.decl.Body, []string{lock}, flowEvents{
				onBlocking: func(pos token.Pos, desc string, held []string) {
					if containsStr(held, lock) {
						ents[blockEntry{desc, pos}] = true
					}
				},
				onCall: func(pos token.Pos, callee *types.Func, held []string) {
					if containsStr(held, lock) {
						calls[funcKey(callee)] = true
					}
				},
				onAcquire: func(pos token.Pos, acquired string, held []string) {
					if containsStr(held, lock) {
						acq[acquired] = true
					}
				},
			})
			f.blockHeld[lock] = ents
			f.callsHeld[lock] = calls
			f.acqHeld[lock] = acq
		}
		f.anyBlockAll = cloneEntrySet(f.anyBlock)
	}

	// Bottom-up propagation over the SCC condensation: Tarjan emits
	// components callee-first, so by the time a component is processed
	// every summary it imports from outside the component is final;
	// within a component we iterate to a fixpoint (recursion).
	ip.SCCs = tarjanSCC(ip.Funcs)
	for _, scc := range ip.SCCs {
		for changed := true; changed; {
			changed = false
			for _, key := range scc {
				f := ip.Funcs[key]
				for callee := range f.calls {
					cf := ip.Funcs[callee]
					if cf == nil {
						continue
					}
					for e := range cf.anyBlockAll {
						if !f.anyBlockAll[e] {
							f.anyBlockAll[e] = true
							changed = true
						}
					}
				}
				for _, lock := range ip.Locks {
					for callee := range f.callsUnder(lock) {
						cf := ip.Funcs[callee]
						if cf == nil {
							continue
						}
						for e := range cf.blockUnder(lock) {
							if !f.ensureBlockHeld(lock)[e] {
								f.ensureBlockHeld(lock)[e] = true
								changed = true
							}
						}
						for acq := range cf.acqUnder(lock) {
							if !f.ensureAcqHeld(lock)[acq] {
								f.ensureAcqHeld(lock)[acq] = true
								changed = true
							}
						}
					}
				}
			}
		}
	}

	// Publish. Untouched locks alias the base maps lazily via the
	// accessors, so materialize the per-lock views for consumers.
	for key, f := range ip.Funcs {
		ip.AnyBlocking[key] = f.anyBlockAll
		bl := make(map[string]map[blockEntry]bool)
		aq := make(map[string]map[string]bool)
		for _, lock := range ip.Locks {
			if ents := f.blockUnder(lock); len(ents) > 0 {
				bl[lock] = ents
			}
			if acq := f.acqUnder(lock); len(acq) > 0 {
				aq[lock] = acq
			}
		}
		ip.Blocking[key] = bl
		ip.Acquired[key] = aq
	}
	return ip
}

// callsUnder returns the callees invoked while the caller's lock is
// still held: the dedicated walk's result for touched locks, all calls
// otherwise.
func (f *ipFunc) callsUnder(lock string) map[string]bool {
	if f.touches[lock] {
		return f.callsHeld[lock]
	}
	return f.calls
}

func (f *ipFunc) blockUnder(lock string) map[blockEntry]bool {
	if f.touches[lock] {
		return f.blockHeld[lock]
	}
	return f.anyBlock
}

func (f *ipFunc) acqUnder(lock string) map[string]bool {
	if f.touches[lock] {
		return f.acqHeld[lock]
	}
	return f.acquires
}

// ensureBlockHeld forces a touched-style private map for the lock so
// propagation never mutates a shared base map through an alias.
func (f *ipFunc) ensureBlockHeld(lock string) map[blockEntry]bool {
	if !f.touches[lock] {
		if f.touches == nil {
			f.touches = make(map[string]bool)
		}
		f.touches[lock] = true
		f.blockHeld[lock] = cloneEntrySet(f.anyBlock)
		f.callsHeld[lock] = cloneStrSet(f.calls)
		f.acqHeld[lock] = cloneStrSet(f.acquires)
	}
	return f.blockHeld[lock]
}

func (f *ipFunc) ensureAcqHeld(lock string) map[string]bool {
	f.ensureBlockHeld(lock)
	return f.acqHeld[lock]
}

func cloneEntrySet(in map[blockEntry]bool) map[blockEntry]bool {
	out := make(map[blockEntry]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func cloneStrSet(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// touchedLocks prescans a declaration for identifiers resolving to
// annotated mutex fields: the locks whose held-state the body could
// change. A conservative superset — any mention counts.
func touchedLocks(pass *Pass, fd *ast.FuncDecl) map[string]bool {
	touched := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if name, ok := pass.Ann.Locks[obj]; ok {
			touched[name] = true
		} else if name, ok := pass.Ann.Global.lockObj(obj); ok {
			touched[name] = true
		}
		return true
	})
	return touched
}

// tarjanSCC computes strongly-connected components of the call graph,
// emitted in bottom-up (callee-first) order. Iterative, so deep call
// chains cannot overflow the stack.
func tarjanSCC(funcs map[string]*ipFunc) [][]string {
	keys := make([]string, 0, len(funcs))
	for k := range funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	index := make(map[string]int, len(funcs))
	low := make(map[string]int, len(funcs))
	onStack := make(map[string]bool, len(funcs))
	var stack []string
	var sccs [][]string
	next := 0

	succOf := func(k string) []string {
		f := funcs[k]
		out := make([]string, 0, len(f.calls))
		for c := range f.calls {
			if _, ok := funcs[c]; ok {
				out = append(out, c)
			}
		}
		sort.Strings(out)
		return out
	}

	type frame struct {
		key  string
		succ []string
		i    int
	}
	for _, root := range keys {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{key: root, succ: succOf(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			fr := &work[len(work)-1]
			if fr.i < len(fr.succ) {
				s := fr.succ[fr.i]
				fr.i++
				if _, seen := index[s]; !seen {
					index[s], low[s] = next, next
					next++
					stack = append(stack, s)
					onStack[s] = true
					work = append(work, frame{key: s, succ: succOf(s)})
				} else if onStack[s] && low[fr.key] > index[s] {
					low[fr.key] = index[s]
				}
				continue
			}
			// Finished fr.key.
			if low[fr.key] == index[fr.key] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == fr.key {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].key
				if low[parent] > low[fr.key] {
					low[parent] = low[fr.key]
				}
			}
		}
	}
	return sccs
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
