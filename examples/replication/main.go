// Replication: asynchronously replicate a live LSVD volume to a second
// object store by lazily copying its immutable object stream (paper
// §4.8), then mount the replica and verify its contents.
//
//	go run ./examples/replication
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"lsvd"
)

func main() {
	ctx := context.Background()
	primary := lsvd.MemStore()
	secondary := lsvd.MemStore() // "the other datacenter"

	disk, err := lsvd.Create(ctx, lsvd.VolumeOptions{
		Name: "vol", Store: primary, Cache: lsvd.MemCacheDevice(128 * lsvd.MiB),
		Size: 512 * lsvd.MiB, BatchBytes: 1 * lsvd.MiB,
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := &lsvd.Replicator{
		Primary: primary, Replica: secondary, Volume: "vol",
		LagObjects: 4, // copy objects once they age past the newest 4
	}

	// Write while replicating in rounds, like the paper's Fig 16 run.
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 64*1024)
	var wrote int64
	for round := 0; round < 10; round++ {
		for i := 0; i < 32; i++ {
			rng.Read(buf)
			off := int64(rng.Intn(512-1)) * lsvd.MiB / 1
			off = off % (512*lsvd.MiB - int64(len(buf)))
			off &^= 511
			if err := disk.WriteAt(buf, off); err != nil {
				log.Fatal(err)
			}
			wrote += int64(len(buf))
		}
		n, err := rep.Sync(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %2d: wrote %3d MiB total, copied %d objects this pass\n",
			round+1, wrote/(1<<20), n)
	}

	// Final catch-up and verification.
	if err := disk.Close(); err != nil {
		log.Fatal(err)
	}
	rep.LagObjects = 0
	if _, err := rep.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	st := rep.Stats()
	fmt.Printf("replicated %d objects, %d MiB (%d deleted by GC before copy)\n",
		st.CopiedObjects, st.CopiedBytes/(1<<20), st.SkippedGone)

	// Mount the replica (fresh cache, different "site") and compare.
	rdisk, err := lsvd.Open(ctx, lsvd.VolumeOptions{
		Name: "vol", Store: secondary, Cache: lsvd.MemCacheDevice(128 * lsvd.MiB),
	})
	if err != nil {
		log.Fatal(err)
	}
	pdisk, err := lsvd.Open(ctx, lsvd.VolumeOptions{
		Name: "vol", Store: primary, Cache: lsvd.MemCacheDevice(128 * lsvd.MiB),
	})
	if err != nil {
		log.Fatal(err)
	}
	a, b := make([]byte, 1<<20), make([]byte, 1<<20)
	for off := int64(0); off < 512*lsvd.MiB; off += 1 << 20 {
		if err := pdisk.ReadAt(a, off); err != nil {
			log.Fatal(err)
		}
		if err := rdisk.ReadAt(b, off); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			log.Fatalf("replica diverges at offset %d", off)
		}
	}
	fmt.Println("replica verified: byte-identical to the primary")
}
