package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden self-tests: each testdata package seeds known violations
// marked with `// want "substring"` comments (`// want-prev` binds to
// the previous line, for diagnostics reported on a directive's own
// line). Every want must be matched by a diagnostic on its line — zero
// false negatives — and every diagnostic must be matched by a want —
// zero false positives. This is what lets `make vet-lsvd` claim the
// analyzers actually detect what they promise before running them over
// the tree.

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantMark struct {
	file string
	line int
	sub  string
	hit  bool
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*wantMark {
	t.Helper()
	var wants []*wantMark
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				prev := false
				switch {
				case strings.HasPrefix(text, "want-prev "):
					prev = true
					text = strings.TrimPrefix(text, "want-prev ")
				case strings.HasPrefix(text, "want "):
					text = strings.TrimPrefix(text, "want ")
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if prev {
					line--
				}
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment without a quoted substring", pos)
				}
				for _, m := range ms {
					wants = append(wants, &wantMark{file: pos.Filename, line: line, sub: m[1]})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("testdata package has no want comments")
	}
	return wants
}

func TestAnalyzerSelfTests(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, _, err := NewLoader(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}

	cases := []struct {
		name string
		mk   func() *Analyzer
	}{
		{"annform", newAnnform},
		{"chanleak", newChanleak},
		{"ctxflow", newCtxflow},
		{"deferorder", newDeferorder},
		{"errclass", newErrclass},
		{"goroguard", newGoroguard},
		{"lockheld", newLockheld},
		{"lockorder", newLockorder},
		{"sectmath", newSectmath},
		{"spinwait", newSpinwait},
		// interproc exercises the cross-function side of lockheld:
		// //lsvd:requires contracts, per-lock summaries, SCC fixpoint.
		{"interproc", newLockheld},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.name)
			pkg, err := loader.LoadDir(dir, "lsvd/vettest/"+tc.name)
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			diags := Run(loader, []*Package{pkg}, []*Analyzer{tc.mk()})
			wants := collectWants(t, loader.Fset, pkg.Files)

			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.sub) {
						w.hit = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic (false positive): %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("missed diagnostic (false negative): %s:%d: no %s report containing %q",
						w.file, w.line, tc.name, w.sub)
				}
			}
		})
	}
}

// TestSelfTestMessages pins the diagnostic rendering format the driver
// prints, so `file:line:col: analyzer: message` stays greppable.
func TestSelfTestMessages(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "lockheld",
		Message:  "m",
	}
	if got, want := d.String(), "x.go:3:7: lockheld: m"; got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
	if got := fmt.Sprint(d); !strings.Contains(got, "lockheld") {
		t.Fatalf("fmt rendering lost the analyzer name: %q", got)
	}
}
