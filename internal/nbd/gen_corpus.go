//go:build ignore

// Generates the checked-in seed corpora for FuzzHandshake and
// FuzzRequestStream:
//
//	go run gen_corpus.go
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
)

// Wire constants duplicated from nbd.go (this file is build-ignored
// and cannot import the internal identifiers it seeds).
const (
	iHaveOpt     = 0x49484156454F5054
	requestMagic = 0x25609513
)

func write(fuzzName, entry string, stream []byte) {
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(stream)))
	if err := os.WriteFile(filepath.Join(dir, entry), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}

func opt(option uint32, payload []byte) []byte {
	hdr := make([]byte, 16)
	binary.BigEndian.PutUint64(hdr[0:], iHaveOpt)
	binary.BigEndian.PutUint32(hdr[8:], option)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(payload)))
	return append(hdr, payload...)
}

func req(typ uint16, handle, offset uint64, length uint32, data []byte) []byte {
	hdr := make([]byte, 28)
	binary.BigEndian.PutUint32(hdr[0:], requestMagic)
	binary.BigEndian.PutUint16(hdr[6:], typ)
	binary.BigEndian.PutUint64(hdr[8:], handle)
	binary.BigEndian.PutUint64(hdr[16:], offset)
	binary.BigEndian.PutUint32(hdr[24:], length)
	return append(hdr, data...)
}

func main() {
	flags := []byte{0, 0, 0, 2} // NBD_FLAG_C_NO_ZEROES
	goPayload := make([]byte, 7)
	binary.BigEndian.PutUint32(goPayload, 1)
	goPayload[4] = 'd'

	write("FuzzHandshake", "abort", append(append([]byte{}, flags...), opt(2, nil)...))
	write("FuzzHandshake", "list", append(append([]byte{}, flags...), opt(3, nil)...))
	write("FuzzHandshake", "go", append(append([]byte{}, flags...), opt(7, goPayload)...))
	write("FuzzHandshake", "export-name", append(append([]byte{}, flags...), opt(1, []byte("d"))...))
	write("FuzzHandshake", "unknown-option", append(append([]byte{}, flags...), opt(999, []byte("junk"))...))
	write("FuzzHandshake", "short", []byte{0xff, 0xff})

	write("FuzzRequestStream", "read", req(0, 1, 0, 4096, nil))
	write("FuzzRequestStream", "write-then-disc",
		append(req(1, 2, 512, 512, make([]byte, 512)), req(2, 3, 0, 0, nil)...))
	write("FuzzRequestStream", "flush", req(3, 4, 0, 0, nil))
	write("FuzzRequestStream", "unknown-command", req(77, 5, 0, 0, nil))
	write("FuzzRequestStream", "oversized", req(0, 6, 0, 64<<20, nil))
	write("FuzzRequestStream", "garbage", []byte{1, 2, 3})
}
