// Quickstart: create an LSVD volume on a directory-backed object
// store, write and read data, take a snapshot, clone a VM image from
// it, and reopen everything after a clean shutdown.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lsvd"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "lsvd-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("workspace:", dir)

	// The backend is any S3-like store; here, a directory tree.
	store, err := lsvd.DirStore(filepath.Join(dir, "objects"))
	if err != nil {
		log.Fatal(err)
	}
	// The local cache SSD; here, a file.
	cache, err := lsvd.FileCacheDevice(filepath.Join(dir, "cache.img"), 256*lsvd.MiB)
	if err != nil {
		log.Fatal(err)
	}

	disk, err := lsvd.Create(ctx, lsvd.VolumeOptions{
		Name: "base", Store: store, Cache: cache, Size: 1 * lsvd.GiB,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created volume %q: %d bytes\n", "base", disk.Size())

	// Write a "golden image" and commit it.
	golden := bytes.Repeat([]byte("GOLDEN-IMAGE-BLOCK"), 256)[:4096]
	for off := int64(0); off < 1*lsvd.MiB; off += 4096 {
		if err := disk.WriteAt(golden, off); err != nil {
			log.Fatal(err)
		}
	}
	if err := disk.Flush(); err != nil { // commit barrier: one SSD flush
		log.Fatal(err)
	}

	// Snapshot the image and clone a VM volume from it. The clone
	// shares the base objects; no data is copied.
	if _, err := disk.Snapshot("v1"); err != nil {
		log.Fatal(err)
	}
	if err := lsvd.Clone(ctx, store, "base", "v1", "vm1"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("snapshotted base@v1 and cloned vm1 from it")

	vmCache, err := lsvd.FileCacheDevice(filepath.Join(dir, "vm1-cache.img"), 256*lsvd.MiB)
	if err != nil {
		log.Fatal(err)
	}
	vm1, err := lsvd.Open(ctx, lsvd.VolumeOptions{Name: "vm1", Store: store, Cache: vmCache})
	if err != nil {
		log.Fatal(err)
	}
	// The clone sees the golden image...
	buf := make([]byte, 4096)
	if err := vm1.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vm1 reads base data: %q...\n", buf[:18])
	// ...and diverges privately.
	if err := vm1.WriteAt(bytes.Repeat([]byte{0x42}, 4096), 0); err != nil {
		log.Fatal(err)
	}
	if err := vm1.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen vm1: recovery replays logs; data is intact.
	vmCache2, _ := lsvd.FileCacheDevice(filepath.Join(dir, "vm1-cache.img"), 256*lsvd.MiB)
	vm1b, err := lsvd.Open(ctx, lsvd.VolumeOptions{Name: "vm1", Store: store, Cache: vmCache2})
	if err != nil {
		log.Fatal(err)
	}
	if err := vm1b.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vm1 after reopen: first byte %#x (diverged), base untouched\n", buf[0])

	st := vm1b.Stats()
	fmt.Printf("stats: %d backend objects, %d map extents, durable write seq %d\n",
		st.Backend.Objects, st.Backend.MapExtents, st.Backend.DurableWriteSeq)
}
