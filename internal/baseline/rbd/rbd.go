// Package rbd implements the comparison baseline of the paper's
// evaluation: a Ceph-RBD-like virtual disk. The image is striped over
// 4 MiB mutable objects placed by consistent hashing; every client
// write is synchronously triple-replicated, and each replica performs
// a write-ahead-log write followed by the data write — the 6x write
// amplification measured in §4.5/Fig 13. Reads go to the primary
// replica.
//
// Data lives in a local sparse image (the simulated cluster meters
// device I/O but does not store payloads); semantically the disk is
// strongly consistent, like real RBD.
package rbd

import (
	"fmt"

	"lsvd/internal/block"
	"lsvd/internal/cluster"
	"lsvd/internal/simdev"
	"lsvd/internal/vdisk"
)

// Options configures an RBD-like disk.
type Options struct {
	Volume string
	Pool   *cluster.Pool
	// VolBytes is the image size.
	VolBytes int64
	// ObjectBytes is the striping unit (Ceph default 4 MiB).
	ObjectBytes int64
}

// Disk is a replicated virtual disk over a simulated storage pool.
type Disk struct {
	opts   Options
	img    *simdev.MemDevice
	writes uint64
	reads  uint64
}

var _ vdisk.Disk = (*Disk)(nil)

// New creates an RBD-like disk.
func New(opts Options) (*Disk, error) {
	if opts.VolBytes <= 0 || opts.VolBytes%block.SectorSize != 0 {
		return nil, fmt.Errorf("rbd: invalid volume size %d", opts.VolBytes)
	}
	if opts.ObjectBytes == 0 {
		opts.ObjectBytes = 4 * block.MiB
	}
	if opts.Pool == nil {
		return nil, fmt.Errorf("rbd: nil pool")
	}
	return &Disk{opts: opts, img: simdev.NewMem(opts.VolBytes)}, nil
}

// Size implements vdisk.Disk.
func (d *Disk) Size() int64 { return d.opts.VolBytes }

func (d *Disk) objKey(off int64) string {
	return fmt.Sprintf("%s/obj%08d", d.opts.Volume, off/d.opts.ObjectBytes)
}

// WriteAt implements vdisk.Disk. The write is split at object
// boundaries; each piece is replicated immediately (RBD cannot batch
// across client writes, §2.1).
func (d *Disk) WriteAt(p []byte, off int64) error {
	if err := d.img.WriteAt(p, off); err != nil {
		return err
	}
	for len(p) > 0 {
		n := d.opts.ObjectBytes - off%d.opts.ObjectBytes
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		d.opts.Pool.WriteReplicated(d.objKey(off), n)
		d.writes++
		off += n
		p = p[n:]
	}
	return nil
}

// ReadAt implements vdisk.Disk.
func (d *Disk) ReadAt(p []byte, off int64) error {
	if err := d.img.ReadAt(p, off); err != nil {
		return err
	}
	for len(p) > 0 {
		n := d.opts.ObjectBytes - off%d.opts.ObjectBytes
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		d.opts.Pool.ReadReplicated(d.objKey(off), n)
		d.reads++
		off += n
		p = p[n:]
	}
	return nil
}

// Flush implements vdisk.Disk. RBD writes are durable on ack (they are
// replicated synchronously), so the barrier is a no-op remotely.
func (d *Disk) Flush() error { return nil }

// Trim implements vdisk.Disk by zeroing the range locally (object
// deallocation is metadata-only in the pool model).
func (d *Disk) Trim(off, length int64) error {
	zero := make([]byte, 64*1024)
	for length > 0 {
		n := int64(len(zero))
		if n > length {
			n = length
		}
		if err := d.img.WriteAt(zero[:n], off); err != nil {
			return err
		}
		off += n
		length -= n
	}
	return nil
}

// Ops returns client (writes, reads) op counts.
func (d *Disk) Ops() (uint64, uint64) { return d.writes, d.reads }
