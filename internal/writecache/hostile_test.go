package writecache

import (
	"encoding/binary"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/simdev"
)

// Hostile 64-bit ring/map counts in a checkpoint must be rejected by
// the bound check, not wrapped negative by int() and fed to make().
// Regression test for the count bounding in decodeCheckpoint.
func TestDecodeCheckpointHostileCounts(t *testing.T) {
	c := &Cache{m: extmap.New()}
	mk := func(nRing, mapLen uint64) []byte {
		buf := make([]byte, 56)
		binary.LittleEndian.PutUint64(buf[40:], nRing)
		binary.LittleEndian.PutUint64(buf[48:], mapLen)
		return buf
	}
	cases := []struct {
		name          string
		nRing, mapLen uint64
	}{
		{"ring count wraps int", 1 << 62, 0},
		{"ring count -1", ^uint64(0), 0},
		{"map length wraps int", 0, 1 << 62},
		{"map length -1", 0, ^uint64(0)},
		{"ring count past payload", 1, 0},
	}
	for _, tc := range cases {
		if err := c.decodeCheckpoint(mk(tc.nRing, tc.mapLen)); err == nil {
			t.Errorf("%s: checkpoint accepted", tc.name)
		}
	}
}

// A log record header whose DataLen would wrap int64 negative must end
// replay at that record (the crash gap), not panic or mis-slice.
// Regression test for the length bounding in replay.
func TestReplayHostileDataLen(t *testing.T) {
	dev := simdev.NewMem(64 * block.MiB)
	c, err := Format(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ext := block.Extent{LBA: 0, Sectors: 8}
	if err := c.Append(1, ext, payload(1, int(ext.Bytes()))); err != nil {
		t.Fatal(err)
	}
	ext2 := block.Extent{LBA: 8, Sectors: 8}
	if err := c.Append(2, ext2, payload(2, int(ext2.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if len(c.ring) != 2 {
		t.Fatalf("ring holds %d records, want 2", len(c.ring))
	}

	// Corrupt the second record's on-disk DataLen field to a value
	// that wraps int64, then recover from the device.
	hdr := make([]byte, block.BlockSize)
	if err := dev.ReadAt(hdr, c.ring[1].off); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(hdr[32:], 1<<63)
	if err := dev.WriteAt(hdr, c.ring[1].off); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dev, Config{})
	if err != nil {
		t.Fatalf("Open on corrupt log: %v", err)
	}
	if c2.recovered != 1 {
		t.Fatalf("recovered %d records, want 1 (replay must stop at the corrupt header)", c2.recovered)
	}
	// The surviving record still reads back.
	buf := make([]byte, ext.Bytes())
	if !c2.ReadFull(ext, buf) {
		t.Fatal("first record lost after replay stopped at the corrupt one")
	}
}
