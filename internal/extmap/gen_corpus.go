//go:build ignore

// Generates the checked-in seed corpora for FuzzOpsOracle and
// FuzzUnmarshalBinary:
//
//	go run gen_corpus.go
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
)

func write(fuzzName, entry string, data []byte) {
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
	if err := os.WriteFile(filepath.Join(dir, entry), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}

func main() {
	write("FuzzOpsOracle", "single-update", []byte{0, 0, 0, 8, 1})
	write("FuzzOpsOracle", "update-delete", []byte{0, 0, 0, 8, 1, 1, 0, 4, 8, 0})
	write("FuzzOpsOracle", "overlapping", []byte{0, 0, 0, 64, 1, 0, 0, 32, 8, 2, 2, 0, 16, 4, 0})
	write("FuzzOpsOracle", "high-lba", []byte{0, 255, 255, 64, 9, 1, 255, 255, 64, 0})

	m := extmap.New()
	m.Update(block.Extent{LBA: 0, Sectors: 16}, extmap.Target{Obj: 3, Off: 64})
	m.Update(block.Extent{LBA: 100, Sectors: 8}, extmap.Target{Obj: 4, Off: 0})
	raw, err := m.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	write("FuzzUnmarshalBinary", "valid", raw)
	write("FuzzUnmarshalBinary", "truncated", raw[:len(raw)-3])
	bad := append([]byte{}, raw...)
	binary.LittleEndian.PutUint32(bad, 1<<30)
	write("FuzzUnmarshalBinary", "inflated-count", bad)
	write("FuzzUnmarshalBinary", "empty", nil)
	write("FuzzUnmarshalBinary", "short", []byte{1, 2, 3, 4, 5})
}
