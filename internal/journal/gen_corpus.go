//go:build ignore

// Generates the checked-in seed corpus for FuzzDecode:
//
//	go run gen_corpus.go
//
// Entries mirror the in-code f.Add seeds so `go test -run Fuzz`
// replays them even without -fuzz.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"lsvd/internal/block"
	"lsvd/internal/journal"
)

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, buf []byte, align bool) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\nbool(%v)\n", strconv.Quote(string(buf)), align)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	data := bytes.Repeat([]byte{0xa5}, 2*block.SectorSize)
	h := &journal.Header{
		Type: journal.TypeData, Seq: 7, WriteSeq: 9, DataLen: uint64(len(data)),
		Extents: []journal.ExtentEntry{{LBA: 8, Sectors: 2, SrcSeq: 7}},
	}
	aligned, err := journal.Encode(h, data, true)
	if err != nil {
		log.Fatal(err)
	}
	write("aligned-record", aligned, true)
	write("aligned-truncated", aligned[:len(aligned)-1], true)
	write("aligned-as-unaligned", aligned, false)

	sector, err := journal.EncodeSectorHeader(h, data)
	if err != nil {
		log.Fatal(err)
	}
	write("sector-record", sector, false)
	write("sector-short-header", sector[:30], false)

	pad, err := journal.Encode(&journal.Header{Type: journal.TypePad, Seq: 1}, nil, true)
	if err != nil {
		log.Fatal(err)
	}
	write("pad-record", pad, true)
	write("garbage", []byte("not a journal record"), false)
}
