package nbd

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
)

// Client is a minimal NBD client used by tests, examples and the
// benchmark harness to drive an exported disk over TCP.
type Client struct {
	conn   net.Conn
	size   int64
	flags  uint16
	handle atomic.Uint64
}

// Dial connects and negotiates the named export via NBD_OPT_GO.
func Dial(addr, export string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	if err := c.handshake(export); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) handshake(export string) error {
	var hs [18]byte
	if _, err := io.ReadFull(c.conn, hs[:]); err != nil {
		return err
	}
	if binary.BigEndian.Uint64(hs[0:]) != nbdMagic || binary.BigEndian.Uint64(hs[8:]) != iHaveOpt {
		return fmt.Errorf("nbd: bad server handshake")
	}
	serverFlags := binary.BigEndian.Uint16(hs[16:])
	if serverFlags&flagFixedNewstyle == 0 {
		return fmt.Errorf("nbd: server is not fixed-newstyle")
	}
	if err := binary.Write(c.conn, binary.BigEndian, uint32(flagFixedNewstyle|flagNoZeroes)); err != nil {
		return err
	}
	// NBD_OPT_GO with the export name.
	payload := make([]byte, 4+len(export)+2)
	binary.BigEndian.PutUint32(payload, uint32(len(export)))
	copy(payload[4:], export)
	// trailing uint16: zero information requests
	if err := c.sendOption(optGo, payload); err != nil {
		return err
	}
	for {
		option, reply, data, err := c.readOptReply()
		if err != nil {
			return err
		}
		if option != optGo {
			return fmt.Errorf("nbd: reply for option %d", option)
		}
		switch reply {
		case repInfo:
			if len(data) >= 12 && binary.BigEndian.Uint16(data) == infoExport {
				c.size = int64(binary.BigEndian.Uint64(data[2:]))
				c.flags = binary.BigEndian.Uint16(data[10:])
			}
		case repAck:
			if c.size == 0 {
				return fmt.Errorf("nbd: no export info received")
			}
			return nil
		default:
			return fmt.Errorf("nbd: option error reply %#x: %s", reply, data)
		}
	}
}

// List returns the server's export names.
func List(addr string) ([]string, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c := &Client{conn: conn}
	var hs [18]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return nil, err
	}
	if err := binary.Write(conn, binary.BigEndian, uint32(flagFixedNewstyle|flagNoZeroes)); err != nil {
		return nil, err
	}
	if err := c.sendOption(optList, nil); err != nil {
		return nil, err
	}
	var names []string
	for {
		_, reply, data, err := c.readOptReply()
		if err != nil {
			return nil, err
		}
		switch reply {
		case repServer:
			if len(data) >= 4 {
				n := binary.BigEndian.Uint32(data)
				names = append(names, string(data[4:4+n]))
			}
		case repAck:
			_ = c.sendOption(optAbort, nil)
			return names, nil
		default:
			return nil, fmt.Errorf("nbd: list error %#x", reply)
		}
	}
}

func (c *Client) sendOption(option uint32, payload []byte) error {
	hdr := make([]byte, 16)
	binary.BigEndian.PutUint64(hdr, iHaveOpt)
	binary.BigEndian.PutUint32(hdr[8:], option)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(payload)))
	if _, err := c.conn.Write(hdr); err != nil {
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

func (c *Client) readOptReply() (option, reply uint32, data []byte, err error) {
	var hdr [20]byte
	if _, err = io.ReadFull(c.conn, hdr[:]); err != nil {
		return
	}
	if binary.BigEndian.Uint64(hdr[0:]) != optReplyMagic {
		err = fmt.Errorf("nbd: bad option reply magic")
		return
	}
	option = binary.BigEndian.Uint32(hdr[8:])
	reply = binary.BigEndian.Uint32(hdr[12:])
	n := binary.BigEndian.Uint32(hdr[16:])
	data = make([]byte, n)
	_, err = io.ReadFull(c.conn, data)
	return
}

// Size returns the export size.
func (c *Client) Size() int64 { return c.size }

func (c *Client) request(typ uint16, off uint64, length uint32, payload []byte) (uint64, error) {
	h := c.handle.Add(1)
	hdr := make([]byte, 28)
	binary.BigEndian.PutUint32(hdr[0:], requestMagic)
	binary.BigEndian.PutUint16(hdr[6:], typ)
	binary.BigEndian.PutUint64(hdr[8:], h)
	binary.BigEndian.PutUint64(hdr[16:], off)
	binary.BigEndian.PutUint32(hdr[24:], length)
	if _, err := c.conn.Write(hdr); err != nil {
		return h, err
	}
	if payload != nil {
		if _, err := c.conn.Write(payload); err != nil {
			return h, err
		}
	}
	return h, nil
}

func (c *Client) readSimpleReply(wantHandle uint64) (uint32, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
		return 0, err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != simpleReplyMagic {
		return 0, fmt.Errorf("nbd: bad reply magic")
	}
	if h := binary.BigEndian.Uint64(hdr[8:]); h != wantHandle {
		return 0, fmt.Errorf("nbd: reply handle %d want %d", h, wantHandle)
	}
	return binary.BigEndian.Uint32(hdr[4:]), nil
}

// ReadAt reads from the export.
func (c *Client) ReadAt(p []byte, off int64) error {
	h, err := c.request(cmdRead, uint64(off), uint32(len(p)), nil)
	if err != nil {
		return err
	}
	errno, err := c.readSimpleReply(h)
	if err != nil {
		return err
	}
	if errno != 0 {
		return fmt.Errorf("nbd: read error %d", errno)
	}
	_, err = io.ReadFull(c.conn, p)
	return err
}

// WriteAt writes to the export.
func (c *Client) WriteAt(p []byte, off int64) error {
	h, err := c.request(cmdWrite, uint64(off), uint32(len(p)), p)
	if err != nil {
		return err
	}
	errno, err := c.readSimpleReply(h)
	if err != nil {
		return err
	}
	if errno != 0 {
		return fmt.Errorf("nbd: write error %d", errno)
	}
	return nil
}

// Flush issues a commit barrier.
func (c *Client) Flush() error {
	h, err := c.request(cmdFlush, 0, 0, nil)
	if err != nil {
		return err
	}
	errno, err := c.readSimpleReply(h)
	if err != nil {
		return err
	}
	if errno != 0 {
		return fmt.Errorf("nbd: flush error %d", errno)
	}
	return nil
}

// Trim discards a range.
func (c *Client) Trim(off, length int64) error {
	h, err := c.request(cmdTrim, uint64(off), uint32(length), nil)
	if err != nil {
		return err
	}
	errno, err := c.readSimpleReply(h)
	if err != nil {
		return err
	}
	if errno != 0 {
		return fmt.Errorf("nbd: trim error %d", errno)
	}
	return nil
}

// Size of the export as required by vdisk.Disk.
var _ = (*Client)(nil)

// Close disconnects politely.
func (c *Client) Close() error {
	_, _ = c.request(cmdDisc, 0, 0, nil)
	return c.conn.Close()
}
