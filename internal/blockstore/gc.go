package blockstore

import (
	"errors"
	"sort"

	"lsvd/internal/block"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
)

// errGCAborted abandons a GC pass mid-collection when Abort lands
// during one of the lock drops below; the victim is left uncleaned (its
// live data was not fully relocated) and the error never escapes
// gcLocked.
var errGCAborted = errors.New("blockstore: gc pass aborted")

// RunGC runs garbage collection until overall utilization reaches the
// high-water mark or no further progress is possible (§3.5).
func (s *Store) RunGC() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	return s.gcLocked()
}

// gcLocked claims the single GC slot and runs one pass. Backend I/O
// inside a pass (header fetches, source-data reads) drops s.mu, so the
// gcBusy claim — shared with the commit-triggered trigger in upload.go
// — is what keeps passes single-flight; fences and Abort wait for it
// via commitCond.
func (s *Store) gcLocked() error {
	for s.gcBusy {
		s.commitCond.Wait()
	}
	if s.aborting {
		return nil
	}
	s.gcBusy = true
	err := s.gcPassLocked()
	s.gcBusy = false
	s.commitCond.Broadcast()
	return err
}

// gcPassLocked implements the Greedy cleaning algorithm [Rosenblum &
// Ousterhout]: repeatedly collect the least-utilized object, copying
// its remaining live data into fresh GC objects, until utilization
// recovers. Cleaned objects are deleted only after the next checkpoint
// (so recovery never sees holes, §3.3) and deletion is further deferred
// while a snapshot pins them (§3.6). Caller owns the gcBusy claim.
func (s *Store) gcPassLocked() error {
	if err := s.sweepOrphansLocked(); err != nil {
		return err
	}
	s.stats.gcRuns++
	high := s.cfg.GCHighWater
	if high <= 0 {
		high = 0.75
	}
	for s.utilizationLocked() < high {
		cands := s.victimCandidatesLocked()
		if len(cands) == 0 {
			return nil
		}
		progress := false
		for _, seq := range cands {
			if s.aborting || s.utilizationLocked() >= high {
				return nil
			}
			o := s.objects[seq]
			if o == nil || s.cleaned[seq] || o.dataSectors == 0 ||
				float64(o.liveSectors)/float64(o.dataSectors) >= 0.999 {
				continue
			}
			if err := s.collectLocked(seq); err != nil {
				if errors.Is(err, errGCAborted) {
					return nil
				}
				return err
			}
			progress = true
		}
		if !progress {
			return nil
		}
	}
	return nil
}

// victimCandidatesLocked returns collectable objects sorted by
// ascending live ratio. The candidate list is consumed in bulk by
// gcPassLocked so the O(objects) scan amortizes over many collections.
func (s *Store) victimCandidatesLocked() []uint32 {
	type cand struct {
		seq   uint32
		ratio float64
	}
	var cands []cand
	for _, o := range s.objects {
		if o.seq <= s.baseSeq || s.cleaned[o.seq] {
			continue
		}
		if o.typ != journal.TypeData && o.typ != journal.TypeGC {
			continue
		}
		if o.dataSectors == 0 {
			continue
		}
		r := float64(o.liveSectors) / float64(o.dataSectors)
		if r >= 0.999 {
			continue // fully live: collecting it cannot help
		}
		cands = append(cands, cand{o.seq, r})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ratio < cands[j].ratio })
	out := make([]uint32, len(cands))
	for i, c := range cands {
		out[i] = c.seq
	}
	return out
}

// gcPiece is one run of live data to relocate.
type gcPiece struct {
	ext    block.Extent
	srcObj uint32
	srcOff block.LBA // sector offset within source object
}

// collectLocked relocates the live data of the victim into new GC
// objects and schedules the victim for deletion. The victim's header
// may need a backend fetch, which drops s.mu; the victim and the pass
// are revalidated after reacquisition (the gcBusy claim keeps passes
// single-flight, but seals, commits and lookups proceed meanwhile).
func (s *Store) collectLocked(seq uint32) error {
	hdr, err := s.headerGCLocked(seq)
	if err != nil {
		return err
	}
	if s.aborting {
		return errGCAborted
	}
	victim := s.objects[seq]
	if victim == nil || s.cleaned[seq] {
		return nil
	}
	pieces := s.livePiecesLocked(victim, hdr)
	if s.cfg.DefragHoleSectors > 0 {
		pieces = s.plugHolesLocked(pieces)
	}

	// Relocate in batches of at most BatchBytes.
	for len(pieces) > 0 {
		var take []gcPiece
		var bytes int64
		for len(pieces) > 0 && bytes < s.cfg.BatchBytes {
			take = append(take, pieces[0])
			bytes += pieces[0].ext.Bytes()
			pieces = pieces[1:]
		}
		if err := s.writeGCObjectLocked(take); err != nil {
			return err
		}
	}

	s.pending = append(s.pending, deferredDelete{Obj: victim.seq, GCSeq: s.nextSeq - 1})
	// Leaving the utilization pool: subtract its contribution.
	if s.utilCounted(victim) {
		s.utilLive -= uint64(victim.liveSectors)
		s.utilData -= uint64(victim.dataSectors)
	}
	s.cleaned[victim.seq] = true
	return nil
}

// livePiecesLocked identifies the victim's still-live extents by
// intersecting its stored header with the object map (§3.5: "we
// retrieve the object header, which lists the live extents held in
// that object at the time of its creation; only these ranges need be
// examined").
func (s *Store) livePiecesLocked(victim *objInfo, hdr *hdrEntry) []gcPiece {
	var pieces []gcPiece
	for _, e := range hdr.extents {
		if e.SrcSeq == trimMarker {
			continue
		}
		ext := block.Extent{LBA: e.LBA, Sectors: e.Sectors}
		for _, run := range s.m.Lookup(ext) {
			if run.Present && run.Target.Obj == victim.seq {
				pieces = append(pieces, gcPiece{ext: run.Extent, srcObj: victim.seq, srcOff: run.Target.Off})
			}
		}
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].ext.LBA < pieces[j].ext.LBA })
	// Objects written without coalescing carry overlapping header
	// extents, so the same live run can be found more than once; clip
	// overlaps so each live sector is copied exactly once (duplicates
	// in a GC object would make it partially dead at birth and the
	// collector would chase its own tail).
	out := pieces[:0]
	var prevEnd block.LBA
	for _, p := range pieces {
		if len(out) > 0 && p.ext.LBA < prevEnd {
			if p.ext.End() <= prevEnd {
				continue // fully duplicated
			}
			d := prevEnd - p.ext.LBA
			p.ext.LBA += d
			p.ext.Sectors -= uint32(d)
			p.srcOff += d
		}
		out = append(out, p)
		prevEnd = p.ext.End()
	}
	return out
}

// plugHolesLocked adds small inter-piece gaps so that the relocated
// extents merge in the map, trading a little extra copying for a
// smaller map (§4.6 defragmentation). Unmapped gap portions are
// plugged with explicit zeros (semantically identical reads); mapped
// portions are copied from wherever they live. Total plugging per
// collection is budgeted to a fraction of the genuinely live bytes so
// the write-amplification cost stays small, as the paper reports.
func (s *Store) plugHolesLocked(pieces []gcPiece) []gcPiece {
	if len(pieces) < 2 {
		return pieces
	}
	var liveSectors uint64
	for _, p := range pieces {
		liveSectors += uint64(p.ext.Sectors)
	}
	budget := liveSectors / 4 // <=25% extra copy volume
	var plugged uint64

	out := make([]gcPiece, 0, len(pieces))
	out = append(out, pieces[0])
	for _, p := range pieces[1:] {
		prevEnd := out[len(out)-1].ext.End()
		if p.ext.LBA > prevEnd && uint32(p.ext.LBA-prevEnd) <= s.cfg.DefragHoleSectors {
			gap := block.Extent{LBA: prevEnd, Sectors: uint32(p.ext.LBA - prevEnd)}
			if plugged+uint64(gap.Sectors) <= budget {
				for _, run := range s.m.Lookup(gap) {
					if run.Present {
						out = append(out, gcPiece{ext: run.Extent, srcObj: run.Target.Obj, srcOff: run.Target.Off})
					} else {
						// Zero-fill: a fresh write of zeros.
						out = append(out, gcPiece{ext: run.Extent})
					}
				}
				plugged += uint64(gap.Sectors)
			}
		}
		out = append(out, p)
	}
	return out
}

// writeGCObjectLocked reads the pieces (preferring the local cache,
// §3.5) and seals them into one GC object. Backend source reads drop
// s.mu — the sources are immutable objects, and installation is
// conditional on the map still pointing at the copied data, so
// concurrent seals/trims during the drop at worst make parts of the GC
// object dead at birth (accounted below). The sequence number is taken
// only after the read phase, under the same continuous critical
// section as the PUT and install, exactly as before.
func (s *Store) writeGCObjectLocked(pieces []gcPiece) error {
	bufs := make([][]byte, len(pieces))
	for i, p := range pieces {
		data := make([]byte, p.ext.Bytes())
		if p.srcObj != 0 && (s.cfg.FetchFromCache == nil || !s.cfg.FetchFromCache(p.ext, data)) {
			name := s.name(p.srcObj)
			s.mu.Unlock()
			got, err := s.cfg.Store.GetRange(s.ctx, name, p.srcOff.Bytes(), p.ext.Bytes())
			s.mu.Lock()
			if err != nil {
				return err
			}
			if s.aborting {
				return errGCAborted
			}
			copy(data, got)
		}
		bufs[i] = data
	}

	exts := make([]journal.ExtentEntry, 0, len(pieces))
	offs := make([]int64, 0, len(pieces))
	seq := s.nextSeq
	var copied int64
	for i, p := range pieces {
		srcSeq := uint64(p.srcObj)
		if p.srcObj == 0 {
			// Zero-fill plug: a fresh write of zeros, installed
			// unconditionally like client data.
			srcSeq = uint64(seq)
		}
		exts = append(exts, journal.ExtentEntry{LBA: p.ext.LBA, Sectors: p.ext.Sectors, SrcSeq: srcSeq})
		offs = append(offs, copied)
		copied += int64(len(bufs[i]))
	}

	// The pieces concatenated form the virtual payload; the slicer
	// walks them like the batch path walks its segments, emitting
	// zero-copy views.
	slices := func(vec [][]byte, srcOff, n int64) [][]byte {
		i := sort.Search(len(offs), func(i int) bool { return offs[i] > srcOff }) - 1
		for n > 0 {
			piece := bufs[i][srcOff-offs[i]:]
			if int64(len(piece)) > n {
				piece = piece[:n]
			}
			vec = append(vec, piece)
			srcOff += int64(len(piece))
			n -= int64(len(piece))
			i++
		}
		return vec
	}
	obj, info, mapped, err := s.buildObject(seq, journal.TypeGC, s.durableWriteSeq, exts, offs, slices)
	if err != nil {
		return err
	}
	//lsvd:ignore the GC PUT must complete inside the seq-reservation critical section under mu (see writeGCObjectLocked doc)
	if err := objstore.PutVec(s.ctx, s.cfg.Store, objName(s.cfg.Volume, seq), obj); err != nil {
		return err
	}
	s.stats.bytesPut += uint64(objstore.VecLen(obj))
	s.stats.gcBytesCopied += uint64(copied)
	s.installObject(info, mapped, nil)
	s.nextSeq++
	s.sinceCkpt++
	return nil
}
