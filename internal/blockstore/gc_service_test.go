package blockstore

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
)

// TestVictimCostModel: candidates are ordered by garbage ratio × age,
// not by pure live ratio — among equally garbage-heavy objects the
// older one wins (its survivors are colder), and among equally old
// objects the emptier one wins.
func TestVictimCostModel(t *testing.T) {
	s := &Store{
		objects: make(map[uint32]*objInfo),
		cleaned: make(map[uint32]bool),
		nextSeq: 100,
	}
	add := func(seq uint32, live, data uint32) {
		s.objects[seq] = &objInfo{seq: seq, typ: journal.TypeData, dataSectors: data, liveSectors: live}
	}
	add(10, 50, 100)  // 50% garbage, age 90 → score 45
	add(80, 50, 100)  // 50% garbage, age 20 → score 10
	add(90, 10, 100)  // 90% garbage, age 10 → score 9
	add(20, 99, 100)  // 1% garbage, age 80  → score 0.8
	add(30, 100, 100) // fully live: not a candidate
	got := s.victimCandidatesLocked()
	want := []uint32{10, 80, 90, 20}
	if len(got) != len(want) {
		t.Fatalf("candidates %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates %v, want %v", got, want)
		}
	}
}

// abortDuringGetRange flips the store into aborting state the first
// time the GC's source read hits the backend — modelling a Kill landing
// inside a pass's lock drop.
type abortDuringGetRange struct {
	objstore.Store
	s    *Store
	once bool
}

func (a *abortDuringGetRange) GetRange(ctx context.Context, name string, off, n int64) ([]byte, error) {
	if !a.once {
		a.once = true
		// The GC dropped s.mu around this call, so taking it here is
		// deadlock-free — exactly the window a concurrent Abort can hit.
		a.s.mu.Lock()
		a.s.aborting = true
		a.s.mu.Unlock()
	}
	return a.Store.GetRange(ctx, name, off, n)
}

// TestGCAbortMidVictimNoUtilDrift: a pass aborted after it started
// collecting a victim (but before the victim is fully relocated) must
// leave the utilization accounting consistent — the victim stays in
// the pool, is not marked cleaned, and a later pass collects it
// normally. Locks the regression for the old subtract-at-clean-time
// scheme, where an abort could strand the counters permanently.
func TestGCAbortMidVictimNoUtilDrift(t *testing.T) {
	mem := objstore.NewMem()
	wrap := &abortDuringGetRange{Store: mem}
	s := newVolume(t, wrap, Config{BatchBytes: 64 * 1024, GCLowWater: 0})
	wrap.s = s

	ext := block.Extent{LBA: 0, Sectors: 128}
	orig := payload(1, int(ext.Bytes()))
	if err := s.Append(1, ext, orig); err != nil {
		t.Fatal(err)
	}
	_ = s.Seal()
	half := block.Extent{LBA: 0, Sectors: 64}
	newer := payload(2, int(half.Bytes()))
	if err := s.Append(2, half, newer); err != nil {
		t.Fatal(err)
	}
	_ = s.Seal()
	utilBefore := s.Utilization()

	// The pass aborts mid-victim (the injected abort lands during the
	// source read); RunGC swallows the abort.
	if err := s.RunGC(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	if len(s.cleaned) != 0 || len(s.pending) != 0 {
		s.mu.Unlock()
		t.Fatalf("aborted pass marked victims cleaned: cleaned=%v pending=%v", s.cleaned, s.pending)
	}
	aborting := s.aborting
	s.mu.Unlock()
	if !aborting {
		t.Fatal("injected abort never fired")
	}
	if err := s.AuditUtilization(); err != nil {
		t.Fatalf("utilization drift after aborted pass: %v", err)
	}
	if u := s.Utilization(); u != utilBefore {
		t.Fatalf("aborted pass moved utilization %.3f -> %.3f", utilBefore, u)
	}

	// Clear the abort (the test's stand-in for reopening) and collect
	// for real.
	s.mu.Lock()
	s.aborting = false
	s.readOnly = false
	s.mu.Unlock()
	if err := s.RunGC(); err != nil {
		t.Fatal(err)
	}
	if err := s.AuditUtilization(); err != nil {
		t.Fatalf("utilization drift after completed pass: %v", err)
	}
	want := append([]byte{}, orig...)
	copy(want, newer)
	if got := readAll(t, s, ext); !bytes.Equal(got, want) {
		t.Fatal("data wrong after abort + re-collect")
	}
}

// TestDeferredDeleteResweptOnOpen: a crash after the checkpoint that
// records a GC victim's deferred delete but before the delete itself
// runs must not leak the victim — Open re-sweeps the deferred list.
func TestDeferredDeleteResweptOnOpen(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	// MaxAttempts < 0 disables the Retrier so armed faults fire
	// deterministically.
	s := newVolume(t, faulty, Config{
		GCLowWater: 0, CheckpointEvery: 1 << 30,
		Retry: objstore.RetryPolicy{MaxAttempts: -1},
	})
	ext := block.Extent{LBA: 0, Sectors: 128}
	orig := payload(1, int(ext.Bytes()))
	_ = s.Append(1, ext, orig)
	_ = s.Seal()
	half := block.Extent{LBA: 0, Sectors: 64}
	newer := payload(2, int(half.Bytes()))
	_ = s.Append(2, half, newer)
	_ = s.Seal()
	if err := s.RunGC(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		t.Fatal("GC cleaned nothing")
	}
	victim := s.pending[0].Obj
	s.mu.Unlock()

	// The checkpoint persists the deferred delete, then the delete
	// itself fails — the state a crash-between-commit-and-delete
	// leaves behind.
	faulty.FailDeletes(objName("vol", victim), -1)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.Get(ctx, objName("vol", victim)); err != nil {
		t.Fatalf("victim %d missing before the crash: %v", victim, err)
	}
	// Crash: the handle is simply abandoned.

	faulty.Disarm()
	s2, err := Open(ctx, Config{Volume: "vol", Store: faulty,
		Retry: objstore.RetryPolicy{MaxAttempts: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.Get(ctx, objName("vol", victim)); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("victim %d still leaked after reopen: %v", victim, err)
	}
	s2.mu.Lock()
	ndef, ncleaned := len(s2.deferred), len(s2.cleaned)
	s2.mu.Unlock()
	if ndef != 0 || ncleaned != 0 {
		t.Fatalf("resweep left deferred=%d cleaned=%d", ndef, ncleaned)
	}
	if err := s2.AuditUtilization(); err != nil {
		t.Fatalf("utilization drift after resweep: %v", err)
	}
	want := append([]byte{}, orig...)
	copy(want, newer)
	if got := readAll(t, s2, ext); !bytes.Equal(got, want) {
		t.Fatal("data wrong after crash + resweep")
	}
}

// TestDeferredDeleteResweepKeepsSnapshotPin: the open-time resweep
// must not delete a victim a snapshot still pins — it goes back on the
// deferred list, exactly as the live path would defer it.
func TestDeferredDeleteResweepKeepsSnapshotPin(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	s := newVolume(t, faulty, Config{
		GCLowWater: 0, CheckpointEvery: 1 << 30,
		Retry: objstore.RetryPolicy{MaxAttempts: -1},
	})
	ext := block.Extent{LBA: 0, Sectors: 128}
	_ = s.Append(1, ext, payload(1, int(ext.Bytes())))
	_ = s.Seal()
	if _, err := s.CreateSnapshot("pin"); err != nil {
		t.Fatal(err)
	}
	half := block.Extent{LBA: 0, Sectors: 64}
	_ = s.Append(2, half, payload(2, int(half.Bytes())))
	_ = s.Seal()
	if err := s.RunGC(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		t.Fatal("GC cleaned nothing")
	}
	victim := s.pending[0].Obj
	s.mu.Unlock()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The pin already deferred the delete; crash and reopen.
	s2, err := Open(ctx, Config{Volume: "vol", Store: faulty,
		Retry: objstore.RetryPolicy{MaxAttempts: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.Get(ctx, objName("vol", victim)); err != nil {
		t.Fatalf("pinned victim %d deleted by resweep: %v", victim, err)
	}
	s2.mu.Lock()
	pinned := false
	for _, d := range s2.deferred {
		if d.Obj == victim {
			pinned = true
		}
	}
	s2.mu.Unlock()
	if !pinned {
		t.Fatal("resweep dropped the snapshot-pinned deferred delete")
	}
	// Deleting the snapshot releases it for good.
	if err := s2.DeleteSnapshot("pin"); err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.Get(ctx, objName("vol", victim)); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("victim %d survived snapshot deletion: %v", victim, err)
	}
}

// stallStore instruments the async pipeline: PUTs of selected objects
// block on a channel (an upload in flight for as long as the test
// wants), and the first GetRange of a selected object runs a callback
// first (a hook inside a GC pass's lock drop).
type stallStore struct {
	objstore.Store
	mu         sync.Mutex
	putGates   map[string]chan struct{}
	onGetRange map[string]func()
}

func (g *stallStore) Put(ctx context.Context, name string, data []byte) error {
	g.mu.Lock()
	gate := g.putGates[name]
	g.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return g.Store.Put(ctx, name, data)
}

func (g *stallStore) GetRange(ctx context.Context, name string, off, n int64) ([]byte, error) {
	g.mu.Lock()
	hook := g.onGetRange[name]
	delete(g.onGetRange, name)
	g.mu.Unlock()
	if hook != nil {
		hook()
	}
	return g.Store.GetRange(ctx, name, off, n)
}

// TestGCStaleSourceNotResurrected is the deterministic reproduction of
// the conditional-install ordering bug: once GC objects exist,
// container sequence numbers no longer order data by freshness — a GC
// object's copy of old data carries a sequence number ABOVE that of a
// later write still sitting in a lower-seq in-flight object. A
// second-generation collection that samples the map before that object
// commits, and installs after, used to resurrect the stale copy (its
// "current target <= my source" check passed), both on the live path
// and again on crash replay. The install predicate must be an exact
// source match.
//
// Interleaving forced here (n = first stalled data seq):
//
//	obj n   (D_a, in flight, PUT stalled): overwrites half of A's live data
//	obj n+1 (D_b, in flight, PUT stalled): overwrites the other half
//	pass 1:  collects A -> G1 = n+2 (samples the map before either commits)
//	D_a commits -> G1 half dead (garbage for pass 2)
//	pass 2:  samples G1's live range (still stale: D_b uncommitted),
//	         then D_b commits inside the pass's source-read lock drop,
//	         then G2 = n+3 installs its copy -- which MUST lose to D_b.
func TestGCStaleSourceNotResurrected(t *testing.T) {
	wrap := &stallStore{
		Store:      objstore.NewMem(),
		putGates:   make(map[string]chan struct{}),
		onGetRange: make(map[string]func()),
	}
	s := newVolume(t, wrap, Config{
		BatchBytes: 64 * block.SectorSize, // exactly the A extent: appends auto-seal
		// Three gate slots: two are pinned by the stalled PUTs, the
		// third lets the GC's background I/O through.
		UploadDepth:     3,
		GCLowWater:      0, // manual RunGC only
		GCHighWater:     0.9,
		CheckpointEvery: 1 << 30,
	})

	extA := block.Extent{LBA: 0, Sectors: 64}
	v1 := payload(1, int(extA.Bytes()))
	if err := s.Append(1, extA, v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	extB := block.Extent{LBA: 32, Sectors: 32}
	v2 := payload(2, int(extB.Bytes()))
	if err := s.Append(2, extB, v2); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// A now holds 32 live sectors (0..31); utilization 64/96 = 0.667.

	s.mu.Lock()
	n := s.nextSeq
	s.mu.Unlock()
	gateA, gateB := make(chan struct{}), make(chan struct{})
	wrap.mu.Lock()
	wrap.putGates[objName("vol", n)] = gateA
	wrap.putGates[objName("vol", n+1)] = gateB
	wrap.mu.Unlock()

	// D_a = obj n: 48 fresh sectors + an overwrite of A's sectors 0..15.
	// The second append fills the batch, so it auto-seals; the PUT then
	// stalls on gateA with the extents not yet installed.
	fillA := block.Extent{LBA: 64, Sectors: 48}
	if err := s.Append(3, fillA, payload(3, int(fillA.Bytes()))); err != nil {
		t.Fatal(err)
	}
	overA := block.Extent{LBA: 0, Sectors: 16}
	v3 := payload(4, int(overA.Bytes()))
	if err := s.Append(4, overA, v3); err != nil {
		t.Fatal(err)
	}
	// D_b = obj n+1: likewise, overwriting A's sectors 16..31.
	fillB := block.Extent{LBA: 112, Sectors: 48}
	if err := s.Append(5, fillB, payload(5, int(fillB.Bytes()))); err != nil {
		t.Fatal(err)
	}
	overB := block.Extent{LBA: 16, Sectors: 16}
	v4 := payload(6, int(overB.Bytes()))
	if err := s.Append(6, overB, v4); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	inflight := len(s.inflight)
	s.mu.Unlock()
	if inflight != 2 {
		t.Fatalf("expected 2 stalled uploads, have %d", inflight)
	}

	// Pass 1 collects A. The map still shows sectors 0..31 -> A (neither
	// stalled object has committed), so G1 = n+2 copies all 32 and
	// installs them -- legal: the sources it copied are still current.
	if err := s.RunGC(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	g1 := s.objects[n+2]
	s.mu.Unlock()
	if g1 == nil || g1.typ != journal.TypeGC {
		t.Fatalf("pass 1 did not produce GC object %d", n+2)
	}

	// D_a commits: G1's sectors 0..15 die, making it pass 2's victim.
	close(gateA)
	waitFor(t, "D_a commit", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.inflight) == 1
	})

	// Pass 2: by the time the pass reads G1's data (the map was already
	// sampled: sectors 16..31 -> G1), D_b commits. G2 = n+3's copy of
	// those sectors is one generation stale and must not install.
	wrap.mu.Lock()
	wrap.onGetRange[objName("vol", n+2)] = func() {
		close(gateB)
		waitFor(t, "D_b commit", func() bool {
			s.mu.Lock()
			defer s.mu.Unlock()
			return len(s.inflight) == 0
		})
	}
	wrap.mu.Unlock()
	if err := s.RunGC(); err != nil {
		t.Fatal(err)
	}
	wrap.mu.Lock()
	hooked := len(wrap.onGetRange)
	wrap.mu.Unlock()
	if hooked != 0 {
		t.Fatal("pass 2 never read G1 from the backend: interleaving not reproduced")
	}
	s.mu.Lock()
	g2 := s.objects[n+3]
	s.mu.Unlock()
	if g2 == nil || g2.typ != journal.TypeGC || g2.dataSectors != 16 {
		t.Fatalf("pass 2 did not relocate G1's sampled range into %d: %+v", n+3, g2)
	}
	if g2.liveSectors != 0 {
		t.Fatalf("G2 installed %d stale sectors over the newer committed write", g2.liveSectors)
	}

	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		ext  block.Extent
		want []byte
	}{
		{"D_a overwrite", overA, v3},
		{"D_b overwrite", overB, v4},
		{"B", extB, v2},
	} {
		if got := readAll(t, s, c.ext); !bytes.Equal(got, c.want) {
			t.Fatalf("%s: GC resurrected stale data", c.name)
		}
	}
	if err := s.AuditUtilization(); err != nil {
		t.Fatal(err)
	}

	// Crash replay sees the same object sequence from scratch: D_b
	// (n+1) replays before G2 (n+3), whose header says "copied from
	// n+2" -- the exact-match predicate must reject it there too.
	s2, err := Open(ctx, Config{Volume: "vol", Store: wrap})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		ext  block.Extent
		want []byte
	}{
		{"D_a overwrite", overA, v3},
		{"D_b overwrite", overB, v4},
		{"B", extB, v2},
	} {
		if got := readAll(t, s2, c.ext); !bytes.Equal(got, c.want) {
			t.Fatalf("%s: crash replay resurrected stale data", c.name)
		}
	}
	if err := s2.AuditUtilization(); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds, failing the test after 10s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGCServicePacedConvergence: with the background service enabled,
// sustained overwrites followed by idle time converge utilization to
// the high-water mark without any explicit RunGC, and the accounting
// stays exact throughout.
func TestGCServicePacedConvergence(t *testing.T) {
	store := objstore.NewMem()
	s := newVolume(t, store, Config{
		BatchBytes: 64 * 1024, UploadDepth: 2,
		GCService: true, GCLowWater: 0.70, GCHighWater: 0.75,
		GCWAFTarget: 2.0, CheckpointEvery: 8,
	})
	defer s.StopGC()
	const ws = 16
	latest := map[int]int64{}
	seq := uint64(0)
	for round := 0; round < 20; round++ {
		for i := 0; i < ws; i++ {
			seq++
			ext := block.Extent{LBA: block.LBA(i * 128), Sectors: 64}
			latest[i] = int64(seq)
			if err := s.Append(seq, ext, payload(int64(seq), int(ext.Bytes()))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// No more foreground traffic: the idle trickle must finish the job.
	deadline := time.Now().Add(30 * time.Second)
	for s.Utilization() < 0.70 {
		if time.Now().After(deadline) {
			t.Fatalf("service never converged: util %.3f, stats %+v", s.Utilization(), s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.StopGC()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.AuditUtilization(); err != nil {
		t.Fatalf("utilization drift under the service: %v", err)
	}
	st := s.Stats()
	if st.GCRuns == 0 || st.GCVictims == 0 {
		t.Fatalf("service never collected: %+v", st)
	}
	for i := 0; i < ws; i++ {
		ext := block.Extent{LBA: block.LBA(i * 128), Sectors: 64}
		if got := readAll(t, s, ext); !bytes.Equal(got, payload(latest[i], int(ext.Bytes()))) {
			t.Fatalf("extent %d corrupted by paced GC", i)
		}
	}
}
