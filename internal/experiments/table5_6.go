package experiments

import (
	"context"
	"fmt"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/costmodel"
	"lsvd/internal/extmap"
	"lsvd/internal/gcsim"
	"lsvd/internal/iomodel"
	"lsvd/internal/objstore"
)

// Table5 reproduces Table 5: simulated LSVD batching and garbage
// collection on the CloudPhysics-like traces, in the paper's three
// configurations. The GCScale knob trades fidelity for runtime
// (DESIGN.md: ratios are scale-free).
func Table5(ctx context.Context, e Env) (*Table, error) {
	scale := float64(e.Scale) * 8 // traces are week-long; scale harder
	rows, err := gcsim.Table5(ctx, gcsim.Defaults(scale))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Table 5: GC simulation (1/%d scale)", int(scale)),
		Header: []string{"trace", "writes GB", "ext nm", "ext m", "ext d", "WAF nm", "WAF m", "WAF d", "merge"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Trace, f2(r.WriteGB),
			fmt.Sprint(r.ExtNoMerge), fmt.Sprint(r.ExtMerge), fmt.Sprint(r.ExtDefrag),
			f2(r.WAFNoMerge), f2(r.WAFMerge), f2(r.WAFDefrag), f2(r.MergeRatio),
		})
	}
	return t, nil
}

// Table6 reproduces Table 6: the fine-grained single-operation
// breakdown for a read miss and a write. Map operations are measured
// live against the real extent map; device and endpoint terms come
// from the calibrated model; context-switch and runtime overheads are
// the paper's measured constants for the kernel/user prototype.
func Table6(ctx context.Context, e Env) (*Table, error) {
	mapNS, err := measureMapNS()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 6: single-op breakdown (µs)",
		Header: []string{"path", "step", "µs", "source"},
	}
	us := func(d time.Duration) string { return f1(float64(d.Nanoseconds()) / 1000) }
	ctxSwitch := 50 * time.Microsecond
	retUser := 22 * time.Microsecond
	retKernel := 27 * time.Microsecond
	goOverheadR := 34 * time.Microsecond
	goOverheadW := 63 * time.Microsecond

	s3 := objstore.NewMetered(objstore.NewMem())
	rd := []struct {
		step string
		d    time.Duration
		src  string
	}{
		{"map lookup", mapNS, "measured (extmap)"},
		{"context switch", ctxSwitch, "paper constant"},
		{"return to user space", retUser, "paper constant"},
		{"golang overhead", goOverheadR, "paper constant"},
		{"S3 range request", s3.GetLatency, "endpoint model"},
		{"write to NVMe", time.Duration(float64(64<<10)/iomodel.NVMeP3700.WriteBW*1e9) + iomodel.NVMeP3700.WriteLatency, "device model"},
		{"return to kernel", retKernel, "paper constant"},
	}
	var totalR time.Duration
	for _, r := range rd {
		t.Rows = append(t.Rows, []string{"read miss", r.step, us(r.d), r.src})
		totalR += r.d
	}
	t.Rows = append(t.Rows, []string{"read miss", "TOTAL", us(totalR), ""})

	wr := []struct {
		step string
		d    time.Duration
		src  string
	}{
		{"write to NVMe", iomodel.NVMeP3700.WriteLatency, "device model"},
		{"map update", mapNS, "measured (extmap)"},
		{"context switch", ctxSwitch, "paper constant"},
		{"return to userspace", 20 * time.Microsecond, "paper constant"},
		{"golang overhead", goOverheadW, "paper constant"},
		{"read from NVMe", iomodel.NVMeP3700.ReadLatency + time.Duration(float64(16<<10)/iomodel.NVMeP3700.ReadBW*1e9), "device model"},
		{"return to kernel", retKernel, "paper constant"},
	}
	var totalW time.Duration
	for _, r := range wr {
		t.Rows = append(t.Rows, []string{"write", r.step, us(r.d), r.src})
		totalW += r.d
	}
	t.Rows = append(t.Rows, []string{"write", "TOTAL", us(totalW), ""})
	return t, nil
}

// measureMapNS times real extent-map updates+lookups on a map sized
// like an active volume's.
func measureMapNS() (time.Duration, error) {
	m := extmap.New()
	for i := 0; i < 100000; i++ {
		m.Update(block.Extent{LBA: block.LBA(i*64) % (1 << 24), Sectors: 32}, extmap.Target{Obj: uint32(i%512 + 1), Off: block.LBA(i * 32)})
	}
	const n = 20000
	start := time.Now()
	for i := 0; i < n; i++ {
		m.Lookup(block.Extent{LBA: block.LBA(i*97) % (1 << 24), Sectors: 32})
	}
	return time.Since(start) / n, nil
}

// Sec49 reproduces §4.9: EBS vs LSVD-on-AWS monthly cost.
func Sec49(ctx context.Context, e Env) (*Table, error) {
	r := costmodel.Compare(costmodel.AWS2022, costmodel.PaperScenario())
	t := &Table{
		Title:  "Sec 4.9: deployability — monthly cost at ~50K IOPS",
		Header: []string{"option", "$/month"},
	}
	t.Rows = append(t.Rows, []string{"EBS provisioned IOPS (io2)", f0(r.EBSMonthly)})
	t.Rows = append(t.Rows, []string{"LSVD: S3 + instance NVMe", f2(r.LSVDMonthly)})
	t.Rows = append(t.Rows, []string{"ratio", f0(r.Ratio)})
	return t, nil
}

// coreOpenBackendOnly opens a replicated volume's block store directly
// (no cache device) to validate replica consistency.
func coreOpenBackendOnly(ctx context.Context, store objstore.Store) (*blockstore.Store, error) {
	return blockstore.Open(ctx, blockstore.Config{Volume: "vol", Store: store})
}
