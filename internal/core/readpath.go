// Parallel read-miss pipeline (paper §3.2, Fig 6/7): the misses one
// ReadAt still has after the write and read caches are looked up in
// the block store, coalesced into per-object spans, and fetched by a
// pool of up to Options.FetchDepth concurrent backend range GETs that
// scatter directly into the caller's buffer. The fetch worker admits
// the demand runs into the read cache itself — that keeps the
// read-then-read-again hit guarantee deterministic and the cost is
// overlapped with the other spans' GETs — while the expensive part of
// admission, decoding the object header and inserting the
// temporal-prefetch extras, happens afterwards on a background
// admitter goroutine, off the ack path; the fetched window stays
// joinable in the block store's flight table until that admission
// completes, so a reader arriving in between shares the bytes instead
// of re-issuing the GET.
//
// Consistency is the same rcGen epoch argument as the serial path: the
// epoch is recorded before the map lookup, every writer bumps it
// before invalidating the read cache, and the admitter drops its own
// inserts if the epoch moved — so a fetch that raced an overwrite can
// never linger in the read cache. Scattering into p needs no locks:
// spans cover disjoint regions of the one read's buffer.
package core

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/extmap"
	"lsvd/internal/invariant"
	"lsvd/internal/objstore"
)

// spanGapSectors is the largest object-offset gap between two runs
// folded into one span: fetching up to 32 KiB of dead bytes beats a
// second backend round trip.
const spanGapSectors = 64

// span is a group of present runs in one object close enough together
// to serve with a single range GET.
type span struct {
	runs   []extmap.Run
	lo, hi block.LBA // object sector range covered
}

// readBackend serves one ReadAt's read-cache misses from the block
// store. A concurrent GC can delete an object between the map lookup
// and the range GET; by then the map has moved on to the relocated
// copy, so the affected virtual ranges are looked up afresh and
// retried.
func (d *Disk) readBackend(ext block.Extent, misses []block.Extent, p []byte) error {
	const maxRetries = 3
	for attempt := 0; ; attempt++ {
		retry, err := d.fetchMisses(ext, misses, p)
		if err == nil || attempt >= maxRetries {
			return err
		}
		if !errors.Is(err, objstore.ErrNotFound) || len(retry) == 0 {
			return err
		}
		misses = retry
	}
}

// fetchMisses runs one attempt: lookup, zero-fill, span building and
// the concurrent fan-out. On ErrNotFound it returns the virtual
// extents whose objects vanished (for re-lookup by the caller); any
// other error wins over ErrNotFound.
func (d *Disk) fetchMisses(ext block.Extent, misses []block.Extent, p []byte) ([]block.Extent, error) {
	epoch := d.rcGen.Load()
	runs := make([]extmap.Run, 0, 2*len(misses))
	for _, miss := range misses {
		runs = d.bs.LookupInto(runs, miss)
	}
	present := 0
	for _, run := range runs {
		if run.Present {
			runs[present] = run
			present++
			continue
		}
		sub := p[(run.LBA - ext.LBA).Bytes():][:run.Bytes()]
		clear(sub)
		d.c.zeroFillSectors.Add(uint64(run.Sectors))
	}
	runs = runs[:present]
	if len(runs) == 0 {
		return nil, nil
	}
	spans := buildSpans(runs)

	workers := d.opts.FetchDepth
	if workers > len(spans) {
		workers = len(spans)
	}
	if workers <= 1 {
		return d.fetchSpansSerial(ext, spans, p, epoch)
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		mu       sync.Mutex
		retry    []block.Extent
		firstErr error
		notFound error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		invariant.Go("core-fetch-worker", func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(spans) {
					return
				}
				if err := d.fetchSpan(ext, spans[i], p, epoch); err != nil {
					mu.Lock()
					if errors.Is(err, objstore.ErrNotFound) {
						notFound = err
						for _, r := range spans[i].runs {
							retry = append(retry, r.Extent)
						}
					} else if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		})
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return retry, notFound
}

// fetchSpansSerial is the workers<=1 path without goroutine overhead;
// backend GETs are still bounded by the store-wide fetcher pool.
func (d *Disk) fetchSpansSerial(ext block.Extent, spans []span, p []byte, epoch uint64) ([]block.Extent, error) {
	var retry []block.Extent
	var notFound error
	for _, sp := range spans {
		if err := d.fetchSpan(ext, sp, p, epoch); err != nil {
			if errors.Is(err, objstore.ErrNotFound) {
				notFound = err
				for _, r := range sp.runs {
					retry = append(retry, r.Extent)
				}
				continue
			}
			return nil, err
		}
	}
	return retry, notFound
}

// buildSpans orders the present runs by object position and coalesces
// neighbors (gap <= spanGapSectors, same object) into spans.
func buildSpans(runs []extmap.Run) []span {
	sort.Slice(runs, func(i, j int) bool {
		a, b := runs[i].Target, runs[j].Target
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Off < b.Off
	})
	var spans []span
	for _, r := range runs {
		rl := r.Target.Off
		rh := rl + block.LBA(r.Sectors)
		if n := len(spans); n > 0 {
			last := &spans[n-1]
			if last.runs[0].Target.Obj == r.Target.Obj && rl <= last.hi+spanGapSectors {
				last.runs = append(last.runs, r)
				if rh > last.hi {
					last.hi = rh
				}
				continue
			}
		}
		spans = append(spans, span{runs: []extmap.Run{r}, lo: rl, hi: rh})
	}
	return spans
}

// fetchSpan fetches one span's window (or joins another reader's
// in-flight fetch of it), scatters the demand runs into p, admits them
// into the read cache, and hands the window to the admitter for the
// prefetch extras. Only the fetch leader enqueues extras: a shared
// window's extras are already owned by its leader.
func (d *Disk) fetchSpan(ext block.Extent, sp span, p []byte, epoch uint64) error {
	win, err := d.bs.FetchSpan(sp.runs, d.opts.PrefetchSectors)
	if err != nil {
		return err
	}
	for _, run := range sp.runs {
		data, err := win.Slice(run)
		if err != nil {
			win.Release()
			return err
		}
		copy(p[(run.LBA-ext.LBA).Bytes():], data)
		// Runs served out of a window another reader already fetched
		// cost no backend I/O — like a prefetch hit, they are exactly
		// the traffic the window machinery saves.
		if !win.Shared {
			d.c.backendReadSectors.Add(uint64(run.Sectors))
		}
	}
	d.admitDemand(sp.runs, win, epoch)
	if d.opts.PrefetchSectors == 0 || win.Shared ||
		!d.adm.enqueue(admitTask{win: win, runs: sp.runs, epoch: epoch}) {
		win.Release()
	}
	return nil
}

// admitDemand inserts the demand runs into the read cache on the fetch
// worker itself, before the read acks: a reader that comes straight
// back for the same data must hit the cache, not re-fetch. Failures
// are swallowed — the read already has its bytes and the cache is
// best-effort. The epoch check mirrors admit(): if a write or trim
// raced the fetch, our stale inserts are pulled back out (the writer's
// Invalidate may have run before them).
func (d *Disk) admitDemand(runs []extmap.Run, win *blockstore.Fetch, epoch uint64) {
	inserted := make([]block.Extent, 0, len(runs))
	for _, run := range runs {
		data, err := win.Slice(run)
		if err != nil {
			break
		}
		if err := d.rc.Insert(run.Extent, data); err != nil {
			break
		}
		inserted = append(inserted, run.Extent)
	}
	if d.rcGen.Load() != epoch {
		for _, ie := range inserted {
			d.rc.Invalidate(ie)
		}
	}
}

// admitTask is one fetched window awaiting prefetch-extras admission:
// the demand runs (already in the read cache) mark what to skip.
type admitTask struct {
	win   *blockstore.Fetch
	runs  []extmap.Run
	epoch uint64
}

// admitter is the background queue for prefetch-extras admission.
// Extras are best-effort: a full queue drops the task (the window's
// extras simply are not cached) rather than stalling the read ack
// path — the demand runs were already admitted by the fetch worker.
type admitter struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []admitTask
	max     int
	busy    bool
	stopped bool
	done    chan struct{}
	dropped atomic.Uint64
}

func (a *admitter) start(d *Disk) {
	a.cond = sync.NewCond(&a.mu)
	a.max = 4 * d.opts.FetchDepth
	a.done = make(chan struct{})
	invariant.Go("core-admitter", func() { a.loop(d) })
}

// enqueue hands a window to the admitter; false means the caller keeps
// ownership (queue full or admitter stopped).
func (a *admitter) enqueue(t admitTask) bool {
	a.mu.Lock()
	if a.stopped || len(a.q) >= a.max {
		a.mu.Unlock()
		a.dropped.Add(1)
		return false
	}
	a.q = append(a.q, t)
	a.cond.Broadcast()
	a.mu.Unlock()
	return true
}

func (a *admitter) loop(d *Disk) {
	defer close(a.done)
	a.mu.Lock()
	for {
		for !a.stopped && len(a.q) == 0 {
			a.cond.Wait()
		}
		if a.stopped {
			for _, t := range a.q {
				t.win.Release()
			}
			a.q = nil
			a.mu.Unlock()
			return
		}
		t := a.q[0]
		a.q = a.q[1:]
		a.busy = true
		a.mu.Unlock()
		d.admit(t)
		a.mu.Lock()
		a.busy = false
		a.cond.Broadcast()
	}
}

// drain blocks until every queued admission has been applied.
func (a *admitter) drain() {
	a.mu.Lock()
	for !a.stopped && (len(a.q) > 0 || a.busy) {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// stop terminates the admitter, releasing queued windows unapplied,
// and waits for the goroutine to exit. Idempotent.
func (a *admitter) stop() {
	a.mu.Lock()
	if a.cond == nil || a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	a.cond.Broadcast()
	a.mu.Unlock()
	//lsvd:ignore shutdown handoff: the loop observes stopped and exits promptly
	<-a.done
}

// admit applies one extras admission: the window's header is decoded
// (off every lock) and the temporal-prefetch extras it maps to
// still-live data are inserted — never overwriting newer read-cache
// content — then the epoch check drops them if a write or trim raced
// the fetch (the writer's Invalidate may have run before these
// inserts; the authoritative copy is in the write cache / newer log,
// which readers consult first).
func (d *Disk) admit(t admitTask) {
	defer t.win.Release()
	inserted := make([]block.Extent, 0, 4)
	defer func() {
		if d.rcGen.Load() != t.epoch {
			for _, ie := range inserted {
				d.rc.Invalidate(ie)
			}
		}
	}()
	skip := make([]block.Extent, len(t.runs))
	for i, r := range t.runs {
		skip[i] = r.Extent
	}
	for _, ex := range d.bs.WindowExtras(t.win, skip) {
		if err := d.insertIfAbsentPrefetched(ex.Ext, ex.Data); err != nil {
			return
		}
		d.c.prefetchedSectors.Add(uint64(ex.Ext.Sectors))
		inserted = append(inserted, ex.Ext)
	}
}

// insertIfAbsentPrefetched inserts only the portions of ext the read
// cache does not already hold: prefetched (older) data must not
// overwrite newer read-cache content. (It can never shadow the write
// cache, which precedes the read cache on every lookup.)
func (d *Disk) insertIfAbsentPrefetched(ext block.Extent, data []byte) error {
	for _, run := range d.rc.Lookup(ext) {
		if run.Present {
			continue
		}
		sub := data[(run.LBA - ext.LBA).Bytes():][:run.Bytes()]
		if err := d.rc.InsertPrefetched(run.Extent, sub); err != nil {
			return err
		}
	}
	return nil
}
