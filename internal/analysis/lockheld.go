package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockheld flags operations that can block indefinitely — backend
// store calls, channel sends/receives, selects without default,
// sync.WaitGroup.Wait, time.Sleep — reachable while a //lsvd:lock
// mutex is held. Blocking under such a lock turns one slow backend
// round-trip into a stall of every reader and writer behind the lock,
// which is exactly the serialization the PR-3/PR-4 work removed.
//
// Detection is interprocedural over the whole target set: the shared
// summaries (see interproc.go) record, for each function and annotated
// lock L, the blocking operations reachable while the caller's L is
// still held — modeling lock-drop protocols where the callee releases
// and re-acquires the caller's mutex — propagated bottom-up over the
// call-graph SCCs and across package boundaries. The reporting pass
// walks each function from its entry, holding its declared
// //lsvd:requires locks and nothing else, and fires on three shapes:
//
//   - a direct blocking operation with an annotated lock held;
//   - a call site whose callee's summary blocks under a held lock;
//   - a call site that fails the callee's //lsvd:requires contract —
//     the `fooLocked` helper invoked on a path where the mutex it
//     needs is not statically held, however many frames separate the
//     helper from the missing acquisition.
//
// The sanctioned exceptions (sync-mode seals, GC PUTs under the
// seq-reservation critical section, backpressure stalls) carry
// //lsvd:ignore annotations with reasons; ignored operations also stay
// out of the summaries, so a waiver at the origin covers every caller.
func newLockheld() *Analyzer {
	a := &Analyzer{
		Name: "lockheld",
		Doc:  "no potentially-blocking operation while holding an //lsvd:lock mutex; //lsvd:requires contracts hold at every call site",
	}
	a.Run = func(pass *Pass) {
		ip := pass.IP
		for fn, fd := range declaredFuncs(pass) {
			key := funcKey(fn)
			walkFunc(pass, fd.Body, ip.Requires[key], flowEvents{
				onBlocking: func(pos token.Pos, desc string, held []string) {
					pass.Reportf(pos, "%s while holding %s", desc, strings.Join(uniqStrings(held), ", "))
				},
				onCall: func(pos token.Pos, callee *types.Func, held []string) {
					ckey := funcKey(callee)
					heldSet := uniqStrings(held)
					for _, r := range ip.Requires[ckey] {
						if !containsStr(heldSet, r) {
							pass.Reportf(pos, "call to %s requires %s held (//lsvd:requires), but it is not held here", callee.Name(), r)
						}
					}
					for _, l := range heldSet {
						if e, ok := minBlockEntry(ip.Blocking[ckey][l]); ok {
							pass.Reportf(pos, "call to %s may block while holding %s: reaches %s at %s",
								callee.Name(), l, e.desc, pass.Fset.Position(e.pos))
						}
					}
				},
			})
		}
	}
	return a
}

func minBlockEntry(ents map[blockEntry]bool) (blockEntry, bool) {
	var best blockEntry
	found := false
	for e := range ents {
		if !found || e.pos < best.pos {
			best, found = e, true
		}
	}
	return best, found
}

// declaredFuncs maps the package's function objects to their
// declarations (bodies only).
func declaredFuncs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

func uniqStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
