// Package lockheld is the golden self-test for the lockheld analyzer:
// every `// want "..."` comment must produce a diagnostic containing
// the quoted substring on that line, and no other diagnostics may
// appear. Seeded violations cover each blocking-operation class plus
// one- and two-level transitive propagation; the unannotated functions
// pin the false-positive surface (lock-drop protocols, goroutine
// bodies, branch-balanced releases).
package lockheld

import (
	"context"
	"sync"
	"time"

	"lsvd/internal/objstore"
)

type store struct {
	mu sync.Mutex //lsvd:lock test.mu
	be objstore.Store
	ch chan int
	wg sync.WaitGroup
}

func (s *store) directBackend(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.be.Put(ctx, "k", nil) // want "objstore.Put while holding test.mu"
}

func (s *store) directSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding test.mu"
	s.mu.Unlock()
}

func (s *store) channelSend() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while holding test.mu"
	s.mu.Unlock()
}

func (s *store) channelRecv() {
	s.mu.Lock()
	<-s.ch // want "channel receive while holding test.mu"
	s.mu.Unlock()
}

func (s *store) selectNoDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while holding test.mu"
	case <-s.ch:
	}
}

func (s *store) selectWithDefault() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		return v
	default:
		return 0
	}
}

func (s *store) waitGroup() {
	s.mu.Lock()
	s.wg.Wait() // want "sync.WaitGroup.Wait while holding test.mu"
	s.mu.Unlock()
}

// helper is clean on its own: no lock held here.
func (s *store) helper(ctx context.Context) {
	_, _ = s.be.Get(ctx, "k")
}

func (s *store) transitive(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.helper(ctx) // want "call to helper may block while holding test.mu"
}

func (s *store) helper2(ctx context.Context) {
	s.helper(ctx)
}

func (s *store) transitiveTwoLevels(ctx context.Context) {
	s.mu.Lock()
	s.helper2(ctx) // want "call to helper2 may block while holding test.mu"
	s.mu.Unlock()
}

// dropper releases the caller's lock around the backend round-trip —
// the blockstore's lock-drop protocol. Callers holding test.mu are
// clean.
func (s *store) dropper(ctx context.Context) {
	s.mu.Unlock()
	_, _ = s.be.Get(ctx, "k")
	s.mu.Lock()
}

func (s *store) lockDropProtocol(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropper(ctx)
}

func (s *store) unlockedThenBlock(ctx context.Context) error {
	s.mu.Lock()
	s.mu.Unlock()
	return s.be.Put(ctx, "k", nil)
}

func (s *store) branchBalanced(ctx context.Context, early bool) error {
	s.mu.Lock()
	if early {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	return s.be.Put(ctx, "k", nil)
}

func (s *store) goroutineBody(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		// A goroutine does not inherit the spawner's locks.
		_ = s.be.Put(ctx, "k", nil)
	}()
}

func (s *store) sanctioned(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lsvd:ignore self-test: sanctioned blocking under the lock
	return s.be.Put(ctx, "k", nil)
}
