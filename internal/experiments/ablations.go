package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"lsvd/internal/block"
	"lsvd/internal/blockstore"
	"lsvd/internal/cluster"
	"lsvd/internal/core"
	"lsvd/internal/objstore"
	"lsvd/internal/readcache"
	"lsvd/internal/simdev"
	"lsvd/internal/workload"
)

// Ablations quantifies the design decisions the paper calls out in
// §3/§6 by toggling each one on the same workload:
//
//   - temporal read prefetch (§3.2, §6.3 "Cache Placement and
//     Pre-fetching"): backend reads saved on re-reads of
//     temporally-clustered data;
//   - GC reads from the local cache (§3.5, §6.3 "Garbage Collection"):
//     backend GETs eliminated during cleaning;
//   - intra-batch coalescing (§3.1): backend bytes eliminated on a
//     hot workload;
//   - read-cache eviction policy FIFO vs LRU (§3.1 notes the separate
//     read cache "can provide LRU or similar eviction policies");
//   - destage through the SSD vs in-memory handoff (§3.7/§6.2 — the
//     prototype's kernel/user split vs the userspace rewrite).
func Ablations(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Ablations: design-choice deltas (paper Secs 3, 6)",
		Header: []string{"ablation", "metric", "off", "on"},
	}

	// 1. Temporal prefetch.
	{
		var backendReads [2]uint64
		for i, prefetch := range []uint32{1, 256} { // PrefetchSectors 0 means default; use 1 as "off"
			st, err := newLSVD(ctx, e, e.smallCache(), cluster.SSDConfig1(), core.Options{
				PrefetchSectors: prefetch, BatchBytes: 2 * block.MiB, WriteCacheFrac: 0.6,
			})
			if err != nil {
				return nil, err
			}
			// Write clusters of temporally-adjacent data...
			buf := make([]byte, 16<<10)
			for c := 0; c < 64; c++ {
				for k := 0; k < 16; k++ {
					off := (int64(c)*997*16<<10 + int64(k)*16<<10) % (e.volBytes() - int64(len(buf)))
					off &^= block.BlockSize - 1
					if err := st.disk.WriteAt(buf, off); err != nil {
						return nil, err
					}
				}
			}
			if err := st.disk.Drain(); err != nil {
				return nil, err
			}
			// ...lose the cache, then re-read each cluster in order:
			// with temporal prefetch the first miss pulls the rest. The
			// old stack's pipeline is killed so it cannot race the
			// reopened volume.
			st.disk.Kill()
			opts := core.Options{PrefetchSectors: prefetch, BatchBytes: 2 * block.MiB, WriteCacheFrac: 0.6,
				Volume: "vol", Store: st.store, CacheDev: newBlankCache(e)}
			e.tune(&opts)
			disk2, err := core.Open(ctx, opts)
			if err != nil {
				return nil, err
			}
			for c := 0; c < 64; c++ {
				for k := 0; k < 16; k++ {
					off := (int64(c)*997*16<<10 + int64(k)*16<<10) % (e.volBytes() - int64(len(buf)))
					off &^= block.BlockSize - 1
					if err := disk2.ReadAt(buf, off); err != nil {
						return nil, err
					}
				}
			}
			backendReads[i] = disk2.Stats().BackendReadSectors
		}
		t.Rows = append(t.Rows, []string{"temporal prefetch", "backend sectors read",
			fmt.Sprint(backendReads[0]), fmt.Sprint(backendReads[1])})
	}

	// 2. GC fetch from local cache.
	{
		var gets [2]uint64
		for i, disable := range []bool{true, false} {
			// GCLowWater -1 disables the background service so the
			// explicit RunGC below does all the cleaning: how many GC
			// passes the paced service fits in before Drain returns is
			// scheduling-dependent, and this ablation compares absolute
			// GET counts between the two runs.
			st, err := newLSVD(ctx, e, e.bigCache(), cluster.SSDConfig1(), core.Options{
				DisableGCCacheFetch: disable, BatchBytes: 1 * block.MiB, WriteCacheFrac: 0.6,
				GCLowWater: -1,
			})
			if err != nil {
				return nil, err
			}
			// Random churn leaves victims partially live, so the GC
			// must copy data — from the backend, or from the (large)
			// local cache when the optimization is on.
			buf := make([]byte, 64<<10)
			rng := rand.New(rand.NewSource(e.Seed + int64(i)))
			for k := 0; k < 600; k++ {
				off := int64(rng.Intn(256)) * (64 << 10)
				if err := st.disk.WriteAt(buf, off); err != nil {
					return nil, err
				}
			}
			if err := st.disk.Drain(); err != nil {
				return nil, err
			}
			if err := st.disk.RunGC(); err != nil {
				return nil, err
			}
			s := st.store.Stats()
			gets[i] = s.GetRanges + s.Gets
		}
		t.Rows = append(t.Rows, []string{"GC reads from cache", "backend GETs",
			fmt.Sprint(gets[0]), fmt.Sprint(gets[1])})
	}

	// 3. Intra-batch coalescing (measured at the block store level).
	{
		var put [2]uint64
		for i, noCoalesce := range []bool{true, false} {
			bs, err := blockstore.Create(ctx, blockstore.Config{
				Volume: "abl", Store: objstore.NewMemSlim(), VolSectors: 1 << 20,
				BatchBytes: 4 * block.MiB, NoCoalesce: noCoalesce, CheckpointEvery: 1 << 30,
			})
			if err != nil {
				return nil, err
			}
			// Journal-like rewrites of the same 64 KiB.
			ws := uint64(0)
			for k := 0; k < 2000; k++ {
				ws++
				ext := block.Extent{LBA: block.LBA((k % 16) * 32), Sectors: 32}
				if err := bs.Append(ws, ext, make([]byte, ext.Bytes())); err != nil {
					return nil, err
				}
			}
			if err := bs.Seal(); err != nil {
				return nil, err
			}
			put[i] = bs.Stats().BytesPut
		}
		t.Rows = append(t.Rows, []string{"intra-batch coalescing", "backend bytes",
			fmt.Sprint(put[0]), fmt.Sprint(put[1])})
	}

	// 4. Read cache FIFO vs LRU under a skewed read workload.
	{
		var hits [2]uint64
		for i, policy := range []readcache.Policy{readcache.FIFO, readcache.LRU} {
			st, err := newLSVD(ctx, e, e.smallCache(), cluster.SSDConfig1(), core.Options{
				ReadCachePolicy: policy, BatchBytes: 2 * block.MiB, WriteCacheFrac: 0.3,
			})
			if err != nil {
				return nil, err
			}
			if err := precondition(st.disk, e); err != nil {
				return nil, err
			}
			// Skewed reads: 80% to the first 10% of the volume.
			gen := &workload.Filebench{Model: workload.Varmail, VolBytes: e.volBytes(), TotalBytes: 16 << 20, Seed: e.Seed}
			if _, err := workload.Run(st.disk, gen, nil, 4000); err != nil {
				return nil, err
			}
			hits[i] = st.disk.Stats().ReadCacheHitSectors
		}
		t.Rows = append(t.Rows, []string{"read cache FIFO vs LRU", "read-cache hit sectors",
			fmt.Sprint(hits[0]), fmt.Sprint(hits[1])})
	}

	// 5. Destage through the SSD (prototype) vs in-memory handoff.
	{
		var devReads [2]uint64
		for i, through := range []bool{false, true} {
			st, err := newLSVD(ctx, e, e.bigCache(), cluster.SSDConfig1(), core.Options{
				ReadbackThroughSSD: through, BatchBytes: 2 * block.MiB,
			})
			if err != nil {
				return nil, err
			}
			buf := make([]byte, 64<<10)
			for k := 0; k < 256; k++ {
				if err := st.disk.WriteAt(buf, int64(k)*(1<<20)%e.volBytes()&^4095); err != nil {
					return nil, err
				}
			}
			if err := st.disk.Drain(); err != nil {
				return nil, err
			}
			devReads[i] = st.cacheDev.Meter.Snapshot().ReadBytes
		}
		t.Rows = append(t.Rows, []string{"destage via SSD (kernel/user split)", "cache device bytes read",
			fmt.Sprint(devReads[0]), fmt.Sprint(devReads[1])})
	}

	return t, nil
}

func newBlankCache(e Env) simdev.Device { return simdev.NewMem(e.smallCache()) }
