package iosched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBoundsConcurrency(t *testing.T) {
	g := NewGate(3)
	g.Register("a")
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Acquire("a")
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			g.Release("a")
		}()
	}
	wg.Wait()
	if m := max.Load(); m > 3 {
		t.Fatalf("gate admitted %d concurrent holders, capacity 3", m)
	}
	st := g.Stats("a")
	if st.Grants+st.Borrows != 20 {
		t.Fatalf("grants %d + borrows %d != 20 acquisitions", st.Grants, st.Borrows)
	}
	if st.Held != 0 {
		t.Fatalf("still holding %d after drain", st.Held)
	}
}

func TestGateMinimumShare(t *testing.T) {
	// Capacity 4, two users: each is guaranteed 2 slots. The hog takes
	// all 4 (2 guaranteed + 2 borrowed); the victim must still get a
	// slot as soon as one frees, even though the hog has more queued.
	g := NewGate(4)
	g.Register("hog")
	g.Register("victim")

	for i := 0; i < 4; i++ {
		g.Acquire("hog")
	}
	// Queue more hog demand plus one victim request.
	hogGot := make(chan struct{}, 8)
	for i := 0; i < 4; i++ {
		go func() {
			g.Acquire("hog")
			hogGot <- struct{}{}
		}()
	}
	victimGot := make(chan struct{})
	go func() {
		g.Acquire("victim")
		close(victimGot)
	}()

	// Let everyone park, then free exactly one slot.
	time.Sleep(20 * time.Millisecond)
	g.Release("hog")

	select {
	case <-victimGot:
	case <-time.After(2 * time.Second):
		t.Fatal("victim starved: released slot went to the over-share hog")
	}
	select {
	case <-hogGot:
		t.Fatal("hog acquired past its share while the victim waited")
	default:
	}
	if st := g.Stats("victim"); st.Grants != 1 || st.Waits != 1 {
		t.Fatalf("victim stats %+v, want 1 grant after 1 wait", st)
	}

	// Drain: victim done, then hog's queued demand proceeds.
	g.Release("victim")
	for i := 0; i < 4; i++ {
		<-hogGot
		g.Release("hog")
	}
	for i := 0; i < 3; i++ {
		g.Release("hog")
	}
}

func TestGateBorrowsIdleCapacity(t *testing.T) {
	// Two registered users but only one active: it may exceed its
	// minimum share (2 of 4) and use the whole gate.
	g := NewGate(4)
	g.Register("busy")
	g.Register("idle")
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		go func() {
			g.Acquire("busy")
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("work conservation failed: idle capacity not borrowed")
		}
	}
	st := g.Stats("busy")
	if st.Borrows == 0 {
		t.Fatalf("stats %+v: expected borrowed slots beyond the share of 2", st)
	}
	for i := 0; i < 4; i++ {
		g.Release("busy")
	}
}

func TestGateUnknownUserBorrows(t *testing.T) {
	g := NewGate(2)
	g.Acquire("anon") // no registration: pure borrower, still bounded
	g.Acquire("anon")
	done := make(chan struct{})
	go func() {
		g.Acquire("anon")
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("gate exceeded capacity for anonymous users")
	case <-time.After(20 * time.Millisecond):
	}
	g.Release("anon")
	<-done
	g.Release("anon")
	g.Release("anon")
}

func TestGateUnregisterGrowsShares(t *testing.T) {
	g := NewGate(4)
	g.Register("a")
	g.Register("b")
	g.Unregister("b")
	if got := g.minShare(); got != 4 {
		t.Fatalf("share after unregister = %d, want full capacity 4", got)
	}
}

func (g *Gate) minShare() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.minShareLocked()
}
