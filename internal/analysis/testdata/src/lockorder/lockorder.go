// Package lockorder is the golden self-test for the lockorder
// analyzer: a direct two-lock cycle (a<->b), an indirect cycle closed
// through a call chain (a->c directly, c->a via a helper call), a
// re-acquisition self-edge, and a private helper lock that must NOT
// contribute edges because nobody calls it with another lock held.
package lockorder

import "sync"

type pair struct {
	a sync.Mutex //lsvd:lock order.a
	b sync.Mutex //lsvd:lock order.b
	c sync.Mutex //lsvd:lock order.c
}

func (p *pair) abOrder() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want "lock order cycle"
	p.b.Unlock()
}

func (p *pair) baOrder() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want "lock order cycle"
	p.a.Unlock()
}

func (p *pair) aThenC() {
	p.a.Lock()
	defer p.a.Unlock()
	p.c.Lock() // want "lock order cycle"
	p.c.Unlock()
}

func (p *pair) lockA() {
	p.a.Lock()
	p.a.Unlock()
}

func (p *pair) cThenCallA() {
	p.c.Lock()
	defer p.c.Unlock()
	p.lockA() // want "lock order cycle"
}

type reentry struct {
	m sync.Mutex //lsvd:lock order.m
}

func (r *reentry) twice() {
	r.m.Lock()
	r.m.Lock() // want "lock order.m acquired while already held"
	r.m.Unlock()
	r.m.Unlock()
}

type inner struct {
	m sync.Mutex //lsvd:lock order.inner
}

// poke takes its private lock; because no caller holds another lock
// across the call, it must not put order.inner into the graph.
func (i *inner) poke() {
	i.m.Lock()
	i.m.Unlock()
}

func useInnerClean(i *inner) {
	i.poke()
}

// dropThenLock releases the caller's lock before taking its own: the
// walker's lock-drop modeling must not record order.b -> order.a here.
func (p *pair) dropThenLock() {
	p.b.Unlock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Lock()
}
