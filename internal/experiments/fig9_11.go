package experiments

import (
	"context"
	"fmt"
	"time"

	"lsvd/internal/cluster"
	"lsvd/internal/core"
	"lsvd/internal/iomodel"
	"lsvd/internal/workload"
)

// Fig9 reproduces Figure 9: random writes with a small (5 GB) cache —
// sustained performance limited by write-back (§4.3).
func Fig9(ctx context.Context, e Env) (*Table, error) {
	return smallCacheMatrix(ctx, e, workload.RandWrite, "Fig 9: random writes, small (5GB) cache (MB/s)")
}

// Fig10 reproduces Figure 10: sequential writes, small cache.
func Fig10(ctx context.Context, e Env) (*Table, error) {
	return smallCacheMatrix(ctx, e, workload.SeqWrite, "Fig 10: sequential writes, small (5GB) cache (MB/s)")
}

func smallCacheMatrix(ctx context.Context, e Env, pattern workload.Pattern, title string) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"bs", "qd", "LSVD", "bcache+RBD", "ratio"},
	}
	for _, bs := range microBlockSizes {
		for _, qd := range microQueueDepth {
			l, err := smallCacheLSVD(ctx, e, pattern, bs, qd)
			if err != nil {
				return nil, err
			}
			b, err := smallCacheBcache(e, pattern, bs, qd)
			if err != nil {
				return nil, err
			}
			ratio := 0.0
			if b > 0 {
				ratio = l / b
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dK", bs/1024), fmt.Sprintf("%d", qd), f1(l), f1(b), f2(ratio),
			})
		}
	}
	return t, nil
}

// smallCacheBudget writes several times the cache size so the run is
// dominated by sustained write-back, as in the paper's 120 s tests.
func smallCacheBudget(e Env) int64 {
	b := 4 * e.smallCache()
	if b > 1<<30 {
		b = 1 << 30
	}
	return b
}

func smallCacheLSVD(ctx context.Context, e Env, pattern workload.Pattern, bs, qd int) (float64, error) {
	st, err := newLSVD(ctx, e, e.smallCache(), cluster.SSDConfig1(), core.Options{WriteCacheFrac: 0.6})
	if err != nil {
		return 0, err
	}
	gen := &workload.Fio{Pattern: pattern, BlockSize: bs, VolBytes: e.volBytes(), TotalBytes: smallCacheBudget(e), Seed: e.Seed}
	c, err := workload.Run(st.disk, gen, nil, 0)
	if err != nil {
		return 0, err
	}
	el := st.elapsed(c.Writes, qd, 0)
	return throughputMBs(c.BytesWritten, el), nil
}

func smallCacheBcache(e Env, pattern workload.Pattern, bs, qd int) (float64, error) {
	st, err := newBcacheRBD(e, e.smallCache(), cluster.SSDConfig1())
	if err != nil {
		return 0, err
	}
	gen := &workload.Fio{Pattern: pattern, BlockSize: bs, VolBytes: e.volBytes(), TotalBytes: smallCacheBudget(e), Seed: e.Seed}
	c, err := workload.Run(st.cache, gen, nil, 0)
	if err != nil {
		return 0, err
	}
	el := st.elapsed(c.Writes, qd, 0)
	return throughputMBs(c.BytesWritten, el), nil
}

// Fig11 reproduces Figure 11: write-back behaviour over time. The
// client performs 20 GB of 4 KiB random writes to an 80 GB volume on
// the HDD backend; LSVD destages concurrently while bcache defers
// write-back until the load stops (§4.4).
func Fig11(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Fig 11: write-back behavior (client done / backend synced, seconds)",
		Header: []string{"system", "client done (s)", "synced (s)", "avg writeback MB/s"},
	}
	totalWrites := 20 * int64(1<<30) / e.Scale

	// LSVD: write-back proceeds during the load; the volume is synced
	// (cache fully destaged) almost immediately after the last write.
	{
		st, err := newLSVD(ctx, e, e.smallCache(), cluster.HDDConfig2(), core.Options{WriteCacheFrac: 0.6})
		if err != nil {
			return nil, err
		}
		gen := &workload.Fio{Pattern: workload.RandWrite, BlockSize: 4096, VolBytes: e.volBytes(), TotalBytes: totalWrites, Seed: e.Seed}
		c, err := workload.Run(st.disk, gen, nil, 0)
		if err != nil {
			return nil, err
		}
		clientDone := st.elapsed(c.Writes, 32, 0)
		if err := st.disk.Drain(); err != nil {
			return nil, err
		}
		synced := st.elapsed(c.Writes, 32, 0) // destage already accounted
		wb := st.store.Stats().BytesPut
		t.Rows = append(t.Rows, []string{
			"LSVD", f1(clientDone.Seconds()), f1(synced.Seconds()),
			f1(throughputMBs(wb, synced)),
		})
	}
	// bcache+RBD: no write-back during load; after the client stops,
	// the dirty cache drains to the replicated backend at HDD speed.
	{
		st, err := newBcacheRBD(e, e.smallCache(), cluster.HDDConfig2())
		if err != nil {
			return nil, err
		}
		gen := &workload.Fio{Pattern: workload.RandWrite, BlockSize: 4096, VolBytes: e.volBytes(), TotalBytes: totalWrites, Seed: e.Seed}
		c, err := workload.Run(st.cache, gen, nil, 0)
		if err != nil {
			return nil, err
		}
		clientDone := st.elapsed(c.Writes, 32, 0)
		preWB := st.cache.Stats().WriteBackBytes
		preBusy := st.pool.MaxBusy()
		preW, preR := st.backing.Ops()
		if err := st.cache.WriteBack(1 << 62); err != nil {
			return nil, err
		}
		wbBytes := st.cache.Stats().WriteBackBytes - preWB
		// Write-back time: only the post-load activity counts, and
		// bcache's write-back thread keeps just a couple of requests
		// in flight.
		w, r := st.backing.Ops()
		wbTime := maxDur(st.pool.MaxBusy()-preBusy, time.Duration(w+r-preW-preR)*rbdNetRTT/2)
		synced := clientDone + wbTime
		_ = iomodel.Counters{}
		t.Rows = append(t.Rows, []string{
			"bcache+RBD", f1(clientDone.Seconds()), f1(synced.Seconds()),
			f1(throughputMBs(wbBytes, wbTime)),
		})
	}
	return t, nil
}
