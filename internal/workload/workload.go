// Package workload generates the I/O streams the paper's evaluation
// uses: fio-style fixed-pattern microbenchmarks (§4.2.1), Filebench
// application models calibrated to the block-level signatures of
// Table 3 (§4.2.2), and synthetic CloudPhysics-like block traces for
// the garbage-collection simulations of Table 5 (§4.6).
//
// Generators are deterministic given a seed, emit byte-addressed
// sector-aligned operations, and are executed against any vdisk.Disk
// by Run.
package workload

import (
	"fmt"
	"math/rand"

	"lsvd/internal/block"
	"lsvd/internal/vdisk"
)

// Kind is the operation type.
type Kind int

const (
	// OpWrite writes Len bytes at Off.
	OpWrite Kind = iota
	// OpRead reads Len bytes at Off.
	OpRead
	// OpFlush is a commit barrier.
	OpFlush
	// OpTrim discards the range.
	OpTrim
)

// Op is one block-level operation.
type Op struct {
	Kind Kind
	Off  int64
	Len  int
}

// Generator produces a stream of operations.
type Generator interface {
	// Next returns the next operation; ok is false at end of stream.
	Next() (op Op, ok bool)
}

// Pattern selects the fio access pattern.
type Pattern int

const (
	// RandWrite is fio randwrite.
	RandWrite Pattern = iota
	// RandRead is fio randread.
	RandRead
	// SeqWrite is fio write.
	SeqWrite
	// SeqRead is fio read.
	SeqRead
)

func (p Pattern) String() string {
	switch p {
	case RandWrite:
		return "randwrite"
	case RandRead:
		return "randread"
	case SeqWrite:
		return "write"
	case SeqRead:
		return "read"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Fio is a fixed block-size, fixed-pattern generator (the fio jobs of
// §4.2.1: block sizes 4/16/64 KiB, queue depths 4/16/32).
type Fio struct {
	Pattern    Pattern
	BlockSize  int
	VolBytes   int64
	TotalBytes int64 // stream length
	Seed       int64

	rng  *rand.Rand
	done int64
	next int64
}

// Next implements Generator.
func (f *Fio) Next() (Op, bool) {
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
	}
	if f.done >= f.TotalBytes {
		return Op{}, false
	}
	f.done += int64(f.BlockSize)
	blocks := f.VolBytes / int64(f.BlockSize)
	var op Op
	op.Len = f.BlockSize
	switch f.Pattern {
	case RandWrite, RandRead:
		op.Off = f.rng.Int63n(blocks) * int64(f.BlockSize)
	case SeqWrite, SeqRead:
		op.Off = f.next
		f.next += int64(f.BlockSize)
		if f.next+int64(f.BlockSize) > f.VolBytes {
			f.next = 0
		}
	}
	if f.Pattern == RandRead || f.Pattern == SeqRead {
		op.Kind = OpRead
	} else {
		op.Kind = OpWrite
	}
	return op, true
}

// FilebenchModel names one of the §4.2.2 application models.
type FilebenchModel int

const (
	// Fileserver emulates a network file server (Table 2: 200K files,
	// 128 KiB mean size, 50 threads; Table 3: 94 KiB mean writes,
	// ~12865 writes between commit barriers).
	Fileserver FilebenchModel = iota
	// OLTP emulates a database (Table 2: 250 files x 100 MiB, 2000 B
	// I/O, 100 MiB log; Table 3: 4.7 KiB writes, 42.7 writes/sync).
	OLTP
	// Varmail emulates a mail server (Table 2: 900K files x 32 KiB;
	// Table 3: 27 KiB writes, 7.6 writes/sync) — create/delete churn
	// over a small set, heavily overwriting (§4.6).
	Varmail
)

func (m FilebenchModel) String() string {
	switch m {
	case Fileserver:
		return "fileserver"
	case OLTP:
		return "oltp"
	case Varmail:
		return "varmail"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// filebenchParams is the block-level signature of a model, from
// Table 3 (write sizes are post-merge means) plus a read mix and
// footprint calibrated to Table 2.
type filebenchParams struct {
	meanWriteKiB   float64
	writesPerSync  float64
	readFrac       float64 // fraction of ops that are reads
	footprintBytes int64   // region the workload touches
	overwrite      bool    // small hot set rewritten (varmail)
}

func paramsFor(m FilebenchModel, volBytes int64) filebenchParams {
	switch m {
	case Fileserver:
		return filebenchParams{meanWriteKiB: 94, writesPerSync: 12865, readFrac: 0.35, footprintBytes: volBytes * 3 / 4}
	case OLTP:
		return filebenchParams{meanWriteKiB: 4.7, writesPerSync: 42.7, readFrac: 0.55, footprintBytes: volBytes / 3}
	default: // Varmail
		return filebenchParams{meanWriteKiB: 27, writesPerSync: 7.6, readFrac: 0.25, footprintBytes: volBytes / 16, overwrite: true}
	}
}

// Filebench generates the block-level stream of one application model.
type Filebench struct {
	Model      FilebenchModel
	VolBytes   int64
	TotalBytes int64 // total write bytes to produce
	Seed       int64

	p          filebenchParams
	rng        *rand.Rand
	written    int64
	sinceSync  float64
	nextAppend int64
}

// Next implements Generator.
func (f *Filebench) Next() (Op, bool) {
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
		f.p = paramsFor(f.Model, f.VolBytes)
	}
	if f.written >= f.TotalBytes {
		return Op{}, false
	}
	// Commit barrier cadence: Poisson-ish around writesPerSync.
	if f.sinceSync >= f.p.writesPerSync*(0.5+f.rng.Float64()) {
		f.sinceSync = 0
		return Op{Kind: OpFlush}, true
	}

	if f.rng.Float64() < f.p.readFrac {
		// Reads sample the written region.
		size := f.sampleSize()
		off := f.sampleOffset(size)
		return Op{Kind: OpRead, Off: off, Len: size}, true
	}
	size := f.sampleSize()
	off := f.sampleOffset(size)
	f.written += int64(size)
	f.sinceSync++
	return Op{Kind: OpWrite, Off: off, Len: size}, true
}

// sampleSize draws a write size with the model's mean: a two-point
// mixture of small metadata-ish writes and larger data writes whose
// weighted mean matches Table 3, rounded to whole 4 KiB blocks (ext4
// submits page-aligned writes).
func (f *Filebench) sampleSize() int {
	mean := f.p.meanWriteKiB * 1024
	var size float64
	if f.rng.Float64() < 0.3 {
		size = 4096 // metadata / small tail
	} else {
		// Exponential around the adjusted mean so the mix hits mean.
		big := (mean - 0.3*4096) / 0.7
		size = f.rng.ExpFloat64() * big
	}
	n := (int(size) + block.BlockSize - 1) &^ (block.BlockSize - 1)
	if n < block.BlockSize {
		n = block.BlockSize
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

func (f *Filebench) sampleOffset(size int) int64 {
	fp := f.p.footprintBytes
	if fp > f.VolBytes {
		fp = f.VolBytes
	}
	maxOff := fp - int64(size)
	if maxOff <= 0 {
		return 0
	}
	if f.p.overwrite {
		// Hot-set overwrites: zipf-ish concentration.
		z := f.rng.Float64()
		z = z * z // square to skew toward 0
		off := int64(z * float64(maxOff))
		return off &^ (block.BlockSize - 1)
	}
	if f.rng.Float64() < 0.4 {
		// Append-style locality.
		off := f.nextAppend
		f.nextAppend += int64(size)
		if f.nextAppend >= maxOff {
			f.nextAppend = 0
		}
		return off &^ (block.BlockSize - 1)
	}
	return f.rng.Int63n(maxOff) &^ (block.BlockSize - 1)
}

// Counts summarizes an executed stream.
type Counts struct {
	Writes, Reads, Flushes, Trims uint64
	BytesWritten, BytesRead       uint64
	WritesBetweenSyncs            float64
	BytesBetweenSyncs             float64
	MeanWriteBytes                float64
}

// Run executes the generator against the disk. When stamp is non-nil
// it is called to fill each write's payload (consistency testing);
// otherwise payloads are zero (cheap under the slim stores). maxOps
// bounds the stream (0 = unbounded).
func Run(d vdisk.Disk, g Generator, stamp func(p []byte, off int64), maxOps uint64) (Counts, error) {
	var c Counts
	buf := make([]byte, 1<<20)
	var ops uint64
	for {
		if maxOps > 0 && ops >= maxOps {
			break
		}
		op, ok := g.Next()
		if !ok {
			break
		}
		ops++
		switch op.Kind {
		case OpWrite:
			p := buf[:op.Len]
			if stamp != nil {
				stamp(p, op.Off)
			}
			if err := d.WriteAt(p, op.Off); err != nil {
				return c, fmt.Errorf("write %d+%d: %w", op.Off, op.Len, err)
			}
			c.Writes++
			c.BytesWritten += uint64(op.Len)
		case OpRead:
			if err := d.ReadAt(buf[:op.Len], op.Off); err != nil {
				return c, fmt.Errorf("read %d+%d: %w", op.Off, op.Len, err)
			}
			c.Reads++
			c.BytesRead += uint64(op.Len)
		case OpFlush:
			if err := d.Flush(); err != nil {
				return c, err
			}
			c.Flushes++
		case OpTrim:
			if err := d.Trim(op.Off, int64(op.Len)); err != nil {
				return c, err
			}
			c.Trims++
		}
	}
	if c.Flushes > 0 {
		c.WritesBetweenSyncs = float64(c.Writes) / float64(c.Flushes)
		c.BytesBetweenSyncs = float64(c.BytesWritten) / float64(c.Flushes)
	}
	if c.Writes > 0 {
		c.MeanWriteBytes = float64(c.BytesWritten) / float64(c.Writes)
	}
	return c, nil
}
