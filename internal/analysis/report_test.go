package analysis

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{Pos: token.Position{Filename: "/mod/internal/b/b.go", Line: 9, Column: 2}, Analyzer: "spinwait", Message: "sleep-poll loop"},
		{Pos: token.Position{Filename: "/mod/internal/a/a.go", Line: 4, Column: 1}, Analyzer: "lockheld", Message: "call to x may block: reaches Put at /mod/internal/a/a.go:7"},
		{Pos: token.Position{Filename: "/mod/internal/a/a.go", Line: 4, Column: 1}, Analyzer: "ctxflow", Message: "ctx dropped"},
	}
}

func TestMakeFindingsSortedAndRelative(t *testing.T) {
	fs := MakeFindings(sampleDiags(), "/mod")
	if len(fs) != 3 {
		t.Fatalf("got %d findings", len(fs))
	}
	// Sorted by file, then line/col, then analyzer.
	if fs[0].File != "internal/a/a.go" || fs[0].Analyzer != "ctxflow" {
		t.Fatalf("sort order wrong: %+v", fs[0])
	}
	if fs[2].File != "internal/b/b.go" {
		t.Fatalf("sort order wrong: %+v", fs[2])
	}
	// Paths are module-relative everywhere, including inside messages
	// (lockheld embeds positions), so output does not depend on the
	// checkout location.
	for _, f := range fs {
		if strings.Contains(f.File, "/mod") || strings.Contains(f.Message, "/mod") {
			t.Fatalf("absolute path leaked: %+v", f)
		}
		if f.Fingerprint == "" {
			t.Fatalf("missing fingerprint: %+v", f)
		}
	}
	if fs[1].Message != "call to x may block: reaches Put at internal/a/a.go:7" {
		t.Fatalf("message not scrubbed: %q", fs[1].Message)
	}
}

func TestFingerprintIgnoresLine(t *testing.T) {
	a := Finding{Analyzer: "spinwait", File: "x.go", Line: 10, Message: "m"}
	b := Finding{Analyzer: "spinwait", File: "x.go", Line: 99, Message: "m"}
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("fingerprint must not depend on line number")
	}
	c := Finding{Analyzer: "spinwait", File: "y.go", Line: 10, Message: "m"}
	d := Finding{Analyzer: "lockheld", File: "x.go", Line: 10, Message: "m"}
	if fingerprint(a) == fingerprint(c) || fingerprint(a) == fingerprint(d) {
		t.Fatal("fingerprint must depend on file and analyzer")
	}
}

func TestEncodeFindingsStable(t *testing.T) {
	fs := MakeFindings(sampleDiags(), "/mod")
	one := EncodeFindings(fs)
	two := EncodeFindings(MakeFindings(sampleDiags(), "/mod"))
	if !bytes.Equal(one, two) {
		t.Fatal("EncodeFindings is not byte-stable across runs")
	}
	if !bytes.HasSuffix(one, []byte("\n")) {
		t.Fatal("document must end in a newline")
	}
	empty := EncodeFindings(nil)
	if !strings.Contains(string(empty), `"findings": []`) {
		t.Fatalf("empty set must serialize as an empty array, got %s", empty)
	}
}

func TestDiffBaseline(t *testing.T) {
	fs := MakeFindings(sampleDiags(), "/mod")
	// Full baseline: nothing fresh, nothing stale.
	fresh, stale := DiffBaseline(fs, &Baseline{Findings: fs})
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("identical sets must diff clean: fresh=%v stale=%v", fresh, stale)
	}
	// Partial baseline: the missing one is fresh.
	fresh, stale = DiffBaseline(fs, &Baseline{Findings: fs[:2]})
	if len(fresh) != 1 || fresh[0].Fingerprint != fs[2].Fingerprint || len(stale) != 0 {
		t.Fatalf("fresh detection wrong: fresh=%v stale=%v", fresh, stale)
	}
	// Baseline entry that no longer fires is stale, not an error.
	gone := Finding{Analyzer: "errclass", File: "z.go", Message: "fixed long ago", Fingerprint: "deadbeef00000000"}
	fresh, stale = DiffBaseline(fs, &Baseline{Findings: append(append([]Finding{}, fs...), gone)})
	if len(fresh) != 0 || len(stale) != 1 || stale[0].Fingerprint != gone.Fingerprint {
		t.Fatalf("stale detection wrong: fresh=%v stale=%v", fresh, stale)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	// Missing file is an empty baseline.
	bl, err := LoadBaseline(filepath.Join(dir, "nope.json"))
	if err != nil || len(bl.Findings) != 0 {
		t.Fatalf("missing baseline: bl=%+v err=%v", bl, err)
	}
	// Round trip.
	fs := MakeFindings(sampleDiags(), "/mod")
	path := filepath.Join(dir, "vet-baseline.json")
	if err := os.WriteFile(path, EncodeBaseline(&Baseline{Comment: "c", Findings: fs}), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err = LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Comment != "c" || len(bl.Findings) != len(fs) || bl.Findings[0].Fingerprint != fs[0].Fingerprint {
		t.Fatalf("round trip lost data: %+v", bl)
	}
	// Corrupt file is a real error, not an empty baseline.
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("corrupt baseline must error")
	}
}
