# Stdlib-only Go module; these targets are the whole workflow.
#
# Static-analysis gate workflow: `make vet-lsvd` first proves every
# analyzer against its golden testdata, then runs lsvd-vet over the
# module and compares the JSON findings against vet-baseline.json by
# fingerprint — any finding not in the baseline fails the build. Fix
# the code (preferred), waive a single site with `//lsvd:ignore
# <reason>`, or park the finding via `make vet-lsvd-update-baseline`
# and commit the regenerated baseline so the decision shows up in
# review.

GO ?= go

# Packages whose concurrency is load-bearing (the async destage
# pipeline, the shared read arena, the multi-volume host, the NBD
# worker pool, and the cluster attach/failover protocol); `make race`
# runs them under the race detector, including the destage stress
# tests.
RACE_PKGS := ./internal/core ./internal/blockstore ./internal/writecache ./internal/nbd ./internal/consistency ./internal/host ./internal/readcache ./internal/replica ./internal/cluster

# Native fuzz targets (package,function); fuzz-smoke runs each for
# FUZZTIME and replays the checked-in testdata/fuzz corpora.
FUZZ_TARGETS := \
	./internal/journal,FuzzDecode \
	./internal/nbd,FuzzHandshake \
	./internal/nbd,FuzzRequestStream \
	./internal/extmap,FuzzOpsOracle \
	./internal/extmap,FuzzUnmarshalBinary \
	./internal/blockstore,FuzzDecodeCheckpoint
FUZZTIME ?= 10s

.PHONY: all build fmt vet test race bench bench-read bench-multivol bench-multivol-profile bench-gc bench-open bench-replica fault gc-torture vet-lsvd vet-lsvd-update-baseline check-invariant fuzz-smoke check clean

all: check

build:
	$(GO) build ./...

# Formatting gate: fail if any tracked Go file is not gofmt-clean.
# gofmt -l prints paths relative to the CURRENT directory without a
# leading ./, so the reference-repo filter must match `related/`
# anywhere in the path, not just at an anchored start. The analysis
# package additionally holds the simplify bar (gofmt -s): it is the
# code that judges the rest of the tree.
fmt:
	@out=$$(gofmt -l . | grep -vE '(^|/)related/' || true); \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	@out=$$(gofmt -s -l internal/analysis cmd/lsvd-vet); \
	if [ -n "$$out" ]; then echo "gofmt -s needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Recovery torture harness (§3.4 under injected backend faults): the
# pinned seed keeps CI deterministic, the second run sweeps a hostile
# 35% per-op failure rate. Override LSVD_FAULT_{SEED,RATE,ITERS} to
# explore.
fault:
	LSVD_FAULT_SEED=1 $(GO) test -count=1 -run TestFaultTorture ./internal/consistency
	LSVD_FAULT_SEED=100 LSVD_FAULT_RATE=0.35 LSVD_FAULT_ITERS=8 \
		$(GO) test -count=1 -run TestFaultTorture ./internal/consistency
	LSVD_FAULT_SEED=1 LSVD_FAULT_ITERS=32 \
		$(GO) test -count=1 -run TestCheckpointCrashTorture ./internal/consistency
	LSVD_FAULT_SEED=1 LSVD_FAULT_ITERS=24 \
		$(GO) test -count=1 -run TestReplicaTorture ./internal/consistency

# Destage-pipeline micro-benchmarks: sync vs async write-ack latency
# and concurrent-reader throughput.
bench:
	$(GO) test -run xxx -bench 'DiskWriteAck|DiskConcurrentReads' -benchtime 2s .

# Read-miss-path benchmarks (cold seqread + QD-sweep random read
# against a simulated-latency backend), recording BENCH_readpath.json.
# The same test runs without the env var as a smoke check in `check`.
bench-read:
	LSVD_READBENCH_OUT=BENCH_readpath.json $(GO) test -count=1 -run TestReadPathQDSweep -v .

# Multi-volume host benchmark (§3.7 shared-SSD packing): aggregate
# write throughput as 1→8 volumes share one host, plus a fairness
# sweep, recording BENCH_multivol.json. Runs without the env var as a
# smoke check in `check`.
bench-multivol:
	LSVD_MULTIVOL_OUT=BENCH_multivol.json $(GO) test -count=1 -run TestMultiVolScaling -v .

# Paced background GC benchmark (DESIGN.md §5g): sustained skewed
# overwrites with the service on vs off, gating foreground p99 (≤1.5×
# the GC-off baseline), measured write amplification (≤ the configured
# target) and idle convergence back to the watermark, recording
# BENCH_gc.json. Runs without the env var as a smoke check in `check`.
bench-gc:
	LSVD_GCBENCH_OUT=BENCH_gc.json $(GO) test -count=1 -run TestGCSustained -v .

# Fast-open benchmark (DESIGN.md §5h): crash-recovery open over a
# 256-object suffix with the recovery fan-out vs the serial baseline
# (gate: >=3x), plus foreground write-ack p999 with background
# checkpoints on vs off (gate: <=1.5x), recording BENCH_open.json.
# Runs without the env var as a smoke check in `check`.
bench-open:
	LSVD_OPENBENCH_OUT=BENCH_open.json $(GO) test -count=1 -run TestOpenRecoveryBench -v .

# Asynchronous-replication benchmark (DESIGN.md §5i): 8 volumes on one
# host each shipping to a per-volume replica backend, gating foreground
# write-ack p99 with replication on at ≤1.3x the replication-off
# baseline and requiring a clean drain (zero final lag), recording
# BENCH_replica.json. Runs without the env var as a smoke check in
# `check`.
bench-replica:
	LSVD_REPLICABENCH_OUT=BENCH_replica.json $(GO) test -count=1 -run TestReplicaShipping -v .

# GC-specific torture: the concurrent-writer fault workload with the
# paced service deliberately kept hungry, asserting per-writer prefix
# consistency plus exact utilization accounting across aborted passes
# and crash recovery. Also runs under `race` and `check-invariant` via
# RACE_PKGS; this target is the widened standalone sweep.
gc-torture:
	LSVD_FAULT_SEED=1 LSVD_FAULT_ITERS=24 $(GO) test -count=1 -run TestGCTorture ./internal/consistency

# Opt-in lock-contention profiling of the scaling sweep (not part of
# `make check`): reruns bench-multivol with mutex and block profiling
# enabled, leaving pprof files plus the test binary in profiles/ for
# `go tool pprof profiles/lsvd.test profiles/multivol-mutex.pb.gz`.
bench-multivol-profile:
	mkdir -p profiles
	$(GO) test -count=1 -run TestMultiVolScaling -v \
		-mutexprofile profiles/multivol-mutex.pb.gz -mutexprofilefraction 5 \
		-blockprofile profiles/multivol-block.pb.gz -blockprofilerate 10000 \
		-o profiles/lsvd.test .

# Custom analyzer suite (DESIGN.md §5e): prove every analyzer against
# its seeded testdata (zero missed, zero spurious findings), then run
# the built driver over the whole module and gate on vet-baseline.json.
# The gate fails only on findings whose fingerprint is NOT in the
# baseline, so a finding can be parked deliberately (reviewed like
# code) without turning the target red; any NEW finding fails CI.
# After fixing a parked finding, or to park a new one, run
# `make vet-lsvd-update-baseline` and commit the regenerated file.
vet-lsvd:
	$(GO) test -count=1 ./internal/analysis/...
	$(GO) build -o bin/lsvd-vet ./cmd/lsvd-vet
	./bin/lsvd-vet -baseline vet-baseline.json ./...

vet-lsvd-update-baseline:
	$(GO) build -o bin/lsvd-vet ./cmd/lsvd-vet
	./bin/lsvd-vet -write-baseline vet-baseline.json ./...

# Runtime invariant layer: rebuild with -tags lsvdcheck so the asserts,
# lock-order tracking, and goroutine guards are compiled in, then run
# the fault-torture and concurrency stress packages under the race
# detector.
check-invariant:
	LSVD_FAULT_SEED=1 $(GO) test -count=1 -tags lsvdcheck -race \
		$(RACE_PKGS) ./internal/invariant

# Replay the checked-in seed corpora, then give each fuzz target
# FUZZTIME of coverage-guided exploration. Every target must have a
# committed corpus under <pkg>/testdata/fuzz/<Fn>/ — an empty corpus
# means the replay step silently proves nothing, so it fails loudly.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%,*}; fn=$${t#*,}; dir=$${pkg#./}/testdata/fuzz/$$fn; \
		if [ -z "$$(ls -A $$dir 2>/dev/null)" ]; then \
			echo "fuzz-smoke: no seed corpus in $$dir (run the fuzzer and commit its inputs)"; exit 1; \
		fi; \
	done
	$(GO) test -count=1 -run Fuzz ./internal/journal ./internal/nbd ./internal/extmap ./internal/blockstore
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%,*}; fn=$${t#*,}; \
		echo "fuzz $$fn ($$pkg, $(FUZZTIME))"; \
		$(GO) test $$pkg -fuzz="^$$fn$$" -fuzztime=$(FUZZTIME); \
	done

check: build fmt vet test race fault gc-torture vet-lsvd check-invariant fuzz-smoke
	$(GO) test -count=1 -run 'TestReadPathQDSweep|TestMultiVolScaling|TestGCSustained|TestOpenRecoveryBench|TestReplicaShipping' .

clean:
	$(GO) clean -testcache
