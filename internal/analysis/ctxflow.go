package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflow flags functions that accept a context.Context and then drop
// it on the floor. Two shapes:
//
//   - The ctx parameter is never referenced anywhere in the body, yet
//     the function (own goroutine) performs classified blocking
//     operations — backend store calls, channel ops, sleeps. The
//     caller's cancellation and deadline silently stop propagating at
//     exactly the function most likely to need them. A parameter
//     named `_` is an explicit discard and stays exempt.
//
//   - A direct time.Sleep inside a ctx-bearing function. The sleep
//     runs to completion no matter what the context says, so a
//     canceled caller waits out the full delay (the objstore fault
//     injector did exactly this on every operation). The fix is a
//     select on ctx.Done() and a timer.
//
// Blocking here is the same classification the lockheld walker uses;
// plain file I/O is deliberately not in it, so Dir-style stores with
// unused contexts on pure-disk paths do not trip the first rule.
func newCtxflow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "a context.Context parameter must flow into the blocking work it was passed for; time.Sleep must not ignore it",
	}
	a.Run = func(pass *Pass) {
		for fn, fd := range declaredFuncs(pass) {
			params := ctxParams(pass, fd)
			if len(params) == 0 {
				continue
			}
			used := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						used[obj] = true
					}
				}
				return true
			})

			var blocks []blockEntry
			walkFunc(pass, fd.Body, nil, flowEvents{
				onAnyBlocking: func(pos token.Pos, desc string) {
					blocks = append(blocks, blockEntry{desc, pos})
				},
			})

			for _, e := range blocks {
				if e.desc == "time.Sleep" {
					pass.Reportf(e.pos, "time.Sleep in %s ignores its ctx parameter: a canceled caller still waits out the full delay (select on ctx.Done() and a timer instead)", fn.Name())
				}
			}
			if len(blocks) == 0 {
				continue
			}
			for _, p := range params {
				if !used[p.obj] {
					pass.Reportf(p.pos, "%s accepts ctx but never uses it, and it blocks (%s): cancellation stops propagating here", fn.Name(), blocks[0].desc)
				}
			}
		}
	}
	return a
}

type ctxParam struct {
	obj types.Object
	pos token.Pos
}

// ctxParams returns the function's named context.Context parameters
// (receiver excluded; `_` excluded).
func ctxParams(pass *Pass, fd *ast.FuncDecl) []ctxParam {
	if fd.Type.Params == nil {
		return nil
	}
	var out []ctxParam
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if isContextType(obj.Type()) {
				out = append(out, ctxParam{obj: obj, pos: name.Pos()})
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
