// Crashsim: demonstrate LSVD's crash-consistency guarantees (paper
// §2.2, §3.3-3.4, Table 4). A stamped-write workload runs against a
// volume; the machine "crashes", losing unflushed device state — or
// the whole cache SSD — and recovery is audited against the recorded
// history: the recovered image must be a consistent prefix of the
// committed writes.
//
//	go run ./examples/crashsim
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"lsvd"
	"lsvd/internal/consistency"
	"lsvd/internal/simdev"
)

func main() {
	ctx := context.Background()

	fmt.Println("--- Crash 1: power failure, cache SSD survives ---")
	{
		store := lsvd.MemStore()
		cache := simdev.NewMem(128 * lsvd.MiB)
		disk, err := lsvd.Create(ctx, lsvd.VolumeOptions{
			Name: "vol", Store: store, Cache: cache, Size: 128 * lsvd.MiB, BatchBytes: 1 * lsvd.MiB,
		})
		if err != nil {
			log.Fatal(err)
		}
		w, _ := consistency.NewWriter(disk)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 400; i++ {
			if err := w.Write(rng.Int63n(2000), rng.Intn(4)+1); err != nil {
				log.Fatal(err)
			}
			if i%50 == 49 {
				_ = w.Barrier()
			}
		}
		fmt.Printf("issued %d writes, committed through v%d\n", w.Version(), w.Committed())

		// Power failure: acknowledged-but-unflushed writes may be
		// lost. Kill stops the destage pipeline as the failure would.
		disk.Kill()
		cache.Crash(1.0, rand.New(rand.NewSource(2)))
		disk2, err := lsvd.Open(ctx, lsvd.VolumeOptions{Name: "vol", Store: store, Cache: cache})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := w.Check(disk2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovered to v%d: mountable=%v, all committed writes present=%v\n\n",
			rep.RecoveredVersion, rep.Mountable, rep.CommittedPreserved)
		if !rep.Mountable || !rep.CommittedPreserved {
			log.Fatal("GUARANTEE VIOLATED")
		}
	}

	fmt.Println("--- Crash 2: the cache SSD is destroyed entirely ---")
	{
		store := lsvd.MemStore()
		opts := lsvd.VolumeOptions{
			Name: "vol", Store: store, Cache: lsvd.MemCacheDevice(128 * lsvd.MiB),
			Size: 128 * lsvd.MiB, BatchBytes: 1 * lsvd.MiB,
		}
		disk, err := lsvd.Create(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		w, _ := consistency.NewWriter(disk)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 400; i++ {
			if err := w.Write(rng.Int63n(2000), rng.Intn(4)+1); err != nil {
				log.Fatal(err)
			}
			if i%50 == 49 {
				_ = w.Barrier()
			}
		}
		// The SSD is gone: reopen with a blank device. The volume
		// falls back to the backend's consistent prefix (some
		// committed writes may be lost, but never reordered).
		disk.Kill()
		opts.Cache = lsvd.MemCacheDevice(128 * lsvd.MiB)
		disk2, err := lsvd.Open(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := w.Check(disk2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovered to v%d of v%d: mountable=%v (prefix consistency)\n",
			rep.RecoveredVersion, w.Version(), rep.Mountable)
		if !rep.Mountable {
			log.Fatal("PREFIX CONSISTENCY VIOLATED")
		}
		fmt.Println("lost the un-destaged tail, as §3.4 allows — but the image is a")
		fmt.Println("consistent prefix: a journaling file system would mount cleanly.")
	}
}
