package experiments

import (
	"context"
	"fmt"
	"time"

	"lsvd/internal/cluster"
	"lsvd/internal/core"
	"lsvd/internal/iomodel"
	"lsvd/internal/vdisk"
	"lsvd/internal/workload"
)

// In-cache microbenchmark matrix (§4.2.1): block sizes 4/16/64 KiB at
// queue depths 4/16/32, 80 GiB volume, cache larger than the volume.
var (
	microBlockSizes = []int{4 << 10, 16 << 10, 64 << 10}
	microQueueDepth = []int{4, 16, 32}
)

// readSerial overheads: the paper's unoptimized LSVD read cache falls
// up to 30% behind bcache at high queue depth (§4.2.1 Fig 7).
const (
	lsvdReadSerial   = 16 * time.Microsecond
	bcacheReadSerial = 12 * time.Microsecond
)

// Fig6 reproduces Figure 6: random write throughput, large cache.
func Fig6(ctx context.Context, e Env) (*Table, error) {
	return microMatrix(ctx, e, workload.RandWrite, "Fig 6: random write, 80GiB volume, large cache (MB/s)")
}

// Fig7 reproduces Figure 7: random read throughput, 100% cache hits.
func Fig7(ctx context.Context, e Env) (*Table, error) {
	return microMatrix(ctx, e, workload.RandRead, "Fig 7: random read, large cache, 100%% hits (MB/s)")
}

// SeqRead reproduces the §4.2.1 text result: sequential read parity.
func SeqRead(ctx context.Context, e Env) (*Table, error) {
	return microMatrix(ctx, e, workload.SeqRead, "Sec 4.2.1: sequential read (MB/s)")
}

func microMatrix(ctx context.Context, e Env, pattern workload.Pattern, title string) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf(title),
		Header: []string{"bs", "qd", "LSVD", "bcache+RBD", "ratio"},
	}
	for _, bs := range microBlockSizes {
		for _, qd := range microQueueDepth {
			lsvdMBs, err := microCellLSVD(ctx, e, pattern, bs, qd)
			if err != nil {
				return nil, err
			}
			bcacheMBs, err := microCellBcache(e, pattern, bs, qd)
			if err != nil {
				return nil, err
			}
			ratio := 0.0
			if bcacheMBs > 0 {
				ratio = lsvdMBs / bcacheMBs
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dK", bs/1024), fmt.Sprintf("%d", qd),
				f1(lsvdMBs), f1(bcacheMBs), f2(ratio),
			})
		}
	}
	return t, nil
}

func cellBudget(e Env) int64 {
	b := e.volBytes() / 16
	if b > 128<<20 {
		b = 128 << 20
	}
	return b
}

func microCellLSVD(ctx context.Context, e Env, pattern workload.Pattern, bs, qd int) (float64, error) {
	st, err := newLSVD(ctx, e, e.bigCache(), cluster.SSDConfig1(), core.Options{})
	if err != nil {
		return 0, err
	}
	if pattern == workload.RandRead || pattern == workload.SeqRead {
		if err := precondition(st.disk, e); err != nil {
			return 0, err
		}
	}
	st.cacheDev.Meter.Reset()
	st.store.Reset()
	st.pool.Reset()

	gen := &workload.Fio{Pattern: pattern, BlockSize: bs, VolBytes: e.volBytes(), TotalBytes: cellBudget(e), Seed: e.Seed}
	c, err := workload.Run(st.disk, gen, nil, 0)
	if err != nil {
		return 0, err
	}
	ops := c.Writes + c.Reads
	serial, perOp := lsvdSoftSerial, lsvdSoftSerial+iomodel.NVMeP3700.WriteLatency
	if pattern == workload.RandRead || pattern == workload.SeqRead {
		serial, perOp = lsvdReadSerial, lsvdReadSerial+iomodel.NVMeP3700.ReadLatency
	}
	el := maxDur(
		time.Duration(ops)*serial,
		time.Duration(ops)*perOp/time.Duration(qd),
		iomodel.ElapsedMeter(st.cacheDev.Meter, qd),
		st.pool.MaxBusy(),
		st.store.ModeledTime(8),
	)
	return throughputMBs(c.BytesWritten+c.BytesRead, el), nil
}

func microCellBcache(e Env, pattern workload.Pattern, bs, qd int) (float64, error) {
	st, err := newBcacheRBD(e, e.bigCache(), cluster.SSDConfig1())
	if err != nil {
		return 0, err
	}
	if pattern == workload.RandRead || pattern == workload.SeqRead {
		if err := precondition(st.cache, e); err != nil {
			return 0, err
		}
	}
	st.cacheDev.Meter.Reset()
	st.pool.Reset()

	gen := &workload.Fio{Pattern: pattern, BlockSize: bs, VolBytes: e.volBytes(), TotalBytes: cellBudget(e), Seed: e.Seed}
	c, err := workload.Run(st.cache, gen, nil, 0)
	if err != nil {
		return 0, err
	}
	ops := c.Writes + c.Reads
	serial, perOp := bcacheSoftSerial, bcacheSoftSerial+iomodel.NVMeP3700.WriteLatency
	if pattern == workload.RandRead || pattern == workload.SeqRead {
		serial, perOp = bcacheReadSerial, bcacheReadSerial+iomodel.NVMeP3700.ReadLatency
	}
	w, r := st.backing.Ops()
	el := maxDur(
		time.Duration(ops)*serial,
		time.Duration(ops)*perOp/time.Duration(qd),
		iomodel.ElapsedMeter(st.cacheDev.Meter, qd),
		st.pool.MaxBusy(),
		time.Duration(w+r)*rbdNetRTT/time.Duration(qd),
	)
	return throughputMBs(c.BytesWritten+c.BytesRead, el), nil
}

// precondition fills the volume once ("preconditioned to fill them
// with data", §4.1) and then reads it back once, pre-loading the
// caches ("pre-loading the cache before each test", §4.2).
func precondition(d vdisk.Disk, e Env) error {
	gen := &workload.Fio{Pattern: workload.SeqWrite, BlockSize: 1 << 20, VolBytes: e.volBytes(), TotalBytes: e.volBytes(), Seed: e.Seed + 7}
	if _, err := workload.Run(d, gen, nil, 0); err != nil {
		return err
	}
	warm := &workload.Fio{Pattern: workload.SeqRead, BlockSize: 1 << 20, VolBytes: e.volBytes(), TotalBytes: e.volBytes(), Seed: e.Seed + 8}
	_, err := workload.Run(d, warm, nil, 0)
	return err
}
