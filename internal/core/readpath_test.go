package core

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

// slowReadStore delays every range GET, widening the window in which
// concurrent readers of the same cold data race each other.
type slowReadStore struct {
	objstore.Store
	delay time.Duration
}

func (s *slowReadStore) GetRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	time.Sleep(s.delay)
	return s.Store.GetRange(ctx, name, off, length)
}

// TestConcurrentColdReadsDedupOneGET proves the singleflight window:
// N readers missing on the same cold 4 KiB at the same moment issue
// exactly one backend range GET between them.
func TestConcurrentColdReadsDedupOneGET(t *testing.T) {
	slow := &slowReadStore{Store: objstore.NewMem(), delay: 10 * time.Millisecond}
	met := objstore.NewMetered(slow)
	opts := Options{
		Volume:   "vol",
		Store:    met,
		CacheDev: simdev.NewMem(64 * block.MiB),
		VolBytes: 64 * block.MiB,
		// Window quantum of one sector: the fetch window is exactly the
		// demand run, so no header-driven extras GETs muddy the count.
		PrefetchSectors: 1,
		BatchBytes:      256 * 1024,
	}
	d, err := Create(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	blockA := payload(1, 4096)
	blockB := payload(2, 4096)
	if err := d.WriteAt(blockA, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(blockB, 64*1024); err != nil {
		t.Fatal(err)
	}
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh cache: both blocks are cold, reads must hit the backend.
	opts.CacheDev = simdev.NewMem(64 * block.MiB)
	d, err = Open(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Warm the object-header cache with the sibling block so the
	// extras admission for the measured reads needs no header GET.
	got := make([]byte, 4096)
	if err := d.ReadAt(got, 64*1024); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blockB) {
		t.Fatal("warm-up read wrong")
	}
	d.adm.drain()
	met.Reset()
	getsBefore := d.Stats().BackendGETs

	const readers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			buf := make([]byte, 4096)
			if err := d.ReadAt(buf, 0); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(buf, blockA) {
				t.Error("concurrent cold read returned wrong data")
			}
			errs <- nil
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	d.adm.drain()
	if n := met.Stats().GetRanges; n != 1 {
		t.Fatalf("%d concurrent identical cold reads issued %d backend GETs, want exactly 1", readers, n)
	}
	st := d.Stats()
	if st.FetchesDeduped == 0 {
		t.Fatal("no fetch joins recorded for racing readers")
	}
	if got := st.BackendGETs - getsBefore; got != 1 {
		t.Fatalf("Stats.BackendGETs advanced by %d, want 1", got)
	}
}

// TestReadPathTorture hammers the fan-out miss path with concurrent
// readers, overwriters and trimmers. Every 4 KiB block is only ever
// written with a uniform stamp byte, so any read must come back
// uniform: a stamp that was written to that block, or zeros after a
// trim. Run under -race this validates the fetch/admit/invalidate
// interleavings.
func TestReadPathTorture(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.BatchBytes = 256 * 1024
		o.FetchDepth = 8
	})
	const (
		blocks    = 32
		blockSize = 4096
		stride    = int64(1 << 20)
	)
	// allowed[b] accumulates every stamp ever written to block b; the
	// stamp is recorded before the write is issued, so the set is
	// always a superset of what a reader may observe.
	var (
		allowedMu sync.Mutex
		allowed   [blocks]map[byte]bool
	)
	stampOf := func(b, gen int) byte { return byte(1 + (b+7*gen)%255) }
	writeBlock := func(b, gen int) error {
		st := stampOf(b, gen)
		allowedMu.Lock()
		allowed[b][st] = true
		allowedMu.Unlock()
		return h.disk.WriteAt(bytes.Repeat([]byte{st}, blockSize), int64(b)*stride)
	}
	for b := 0; b < blocks; b++ {
		allowed[b] = map[byte]bool{0: true} // trims read back as zeros
		if err := writeBlock(b, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.disk.Drain(); err != nil {
		t.Fatal(err)
	}
	// Fresh cache so reads exercise the backend fan-out, not the warm
	// write cache alone.
	h.opts.CacheDev = simdev.NewMem(256 * block.MiB)
	h.reopen(t)
	for b := 0; b < blocks; b++ {
		allowed[b][0] = true
	}

	var (
		wg   sync.WaitGroup
		fail atomic.Bool
	)
	reader := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, blockSize)
		for i := 0; i < 150 && !fail.Load(); i++ {
			b := rng.Intn(blocks)
			if err := h.disk.ReadAt(buf, int64(b)*stride); err != nil {
				t.Errorf("read block %d: %v", b, err)
				fail.Store(true)
				return
			}
			st := buf[0]
			for _, c := range buf {
				if c != st {
					t.Errorf("block %d read torn: %d vs %d", b, st, c)
					fail.Store(true)
					return
				}
			}
			allowedMu.Lock()
			ok := allowed[b][st]
			allowedMu.Unlock()
			if !ok {
				t.Errorf("block %d read stamp %d that was never written", b, st)
				fail.Store(true)
				return
			}
		}
	}
	writer := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for i := 1; i <= 60 && !fail.Load(); i++ {
			if err := writeBlock(rng.Intn(blocks), i); err != nil {
				t.Errorf("write: %v", err)
				fail.Store(true)
				return
			}
		}
	}
	trimmer := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 30 && !fail.Load(); i++ {
			b := rng.Intn(blocks)
			if err := h.disk.Trim(int64(b)*stride, blockSize); err != nil {
				t.Errorf("trim: %v", err)
				fail.Store(true)
				return
			}
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go reader(int64(100 + g))
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go writer(int64(200 + g))
	}
	wg.Add(1)
	go trimmer(300)
	wg.Wait()
	if fail.Load() {
		return
	}

	// Quiesced re-check: every block still uniform and plausible.
	if err := h.disk.Drain(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockSize)
	for b := 0; b < blocks; b++ {
		if err := h.disk.ReadAt(buf, int64(b)*stride); err != nil {
			t.Fatal(err)
		}
		st := buf[0]
		for _, c := range buf {
			if c != st {
				t.Fatalf("block %d torn after quiesce", b)
			}
		}
		if !allowed[b][st] {
			t.Fatalf("block %d holds never-written stamp %d", b, st)
		}
	}
}

// TestReadPathFaultInjected reruns a cold concurrent read workload
// against a backend that drops and delays range GETs: the retry layer
// must absorb the faults and every read must still return the exact
// destaged bytes.
func TestReadPathFaultInjected(t *testing.T) {
	faulty := objstore.NewFaulty(objstore.NewMem())
	opts := Options{
		Volume:     "vol",
		Store:      faulty,
		CacheDev:   simdev.NewMem(128 * block.MiB),
		VolBytes:   128 * block.MiB,
		BatchBytes: 256 * 1024,
		FetchDepth: 8,
		Retry:      objstore.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, Seed: 42},
	}
	d, err := Create(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 16
	want := make([][]byte, blocks)
	for b := 0; b < blocks; b++ {
		want[b] = payload(int64(b), 16*1024)
		if err := d.WriteAt(want[b], int64(b)*(1<<20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	opts.CacheDev = simdev.NewMem(128 * block.MiB)
	d, err = Open(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	faulty.Arm(objstore.FaultConfig{
		Seed:    7,
		Rates:   objstore.FaultRates{GetRange: 0.2},
		Latency: time.Millisecond,
	})
	defer faulty.Disarm()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			buf := make([]byte, 16*1024)
			for i := 0; i < 40; i++ {
				b := rng.Intn(blocks)
				if err := d.ReadAt(buf, int64(b)*(1<<20)); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, want[b]) {
					t.Errorf("block %d wrong under GET faults", b)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if faulty.InjectedFaults() == 0 {
		t.Fatal("fault injection never fired; test is vacuous")
	}
}

// TestRunCoalescing checks that a cold fragmented sequential read is
// served with far fewer GETs than runs: adjacent runs in the same
// object ride one range request.
func TestRunCoalescing(t *testing.T) {
	h := newHarness(t, func(o *Options) {
		o.BatchBytes = 2 * block.MiB
	})
	// Write every other 8 KiB chunk: the LBA gaps keep the map runs
	// from merging, while the destaged object packs the chunks back to
	// back — a cold read over the range sees many small runs that are
	// adjacent in one object.
	const chunk = 8 * 1024
	data := payload(3, 1<<20)
	for off := 0; off < len(data); off += 2 * chunk {
		if err := h.disk.WriteAt(data[off:off+chunk], int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.disk.Drain(); err != nil {
		t.Fatal(err)
	}
	h.opts.CacheDev = simdev.NewMem(256 * block.MiB)
	h.reopen(t)

	got := make([]byte, len(data))
	if err := h.disk.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(data))
	for off := 0; off < len(data); off += 2 * chunk {
		copy(want[off:off+chunk], data[off:off+chunk])
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fragmented cold read wrong")
	}
	st := h.disk.Stats()
	const chunks = (1 << 20) / (2 * chunk)
	if st.RunsCoalesced < chunks/2 {
		t.Fatalf("only %d runs coalesced on a %d-run fragmented read (GETs=%d)",
			st.RunsCoalesced, chunks, st.BackendGETs)
	}
	if st.BackendGETs > 8 {
		t.Fatalf("GET amplification too high: %d GETs for %d adjacent runs", st.BackendGETs, chunks)
	}
}
