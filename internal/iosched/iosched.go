// Package iosched provides a shared backend-concurrency gate with
// per-user minimum shares. A multi-volume host bounds its total upload
// concurrency with ONE budget; a plain counting semaphore over that
// budget lets a single hot volume monopolize every slot and starve its
// neighbors' destage pipelines. The Gate keeps the global bound but
// guarantees each registered user a minimum share of it:
//
//	minShare = max(1, capacity / registeredUsers)
//
// A user below its minimum share is granted a slot whenever one is
// free. A user at or above its share may still borrow idle capacity —
// work conservation — but only while no under-share user is waiting,
// so a starved volume reclaims its guaranteed slots within one release.
package iosched

import (
	"sync"

	"lsvd/internal/invariant"
)

// Gate is a capacity-bounded semaphore with per-user minimum shares.
type Gate struct {
	mu    sync.Mutex //lsvd:lock iosched.gate
	cond  *sync.Cond
	cap   int
	held  int
	users map[string]*gateUser

	// bg tracks background-class users (AcquireBackground): no
	// guaranteed share, and they yield not just to starved registered
	// users but to ANY blocked foreground acquirer.
	bg map[string]*gateUser
	// fgWaiting counts foreground Acquire calls currently blocked; any
	// nonzero value suspends background grants entirely.
	fgWaiting int

	// retired keeps unregistered users' counters so Stats stays
	// meaningful after a volume closes (a re-registered id resumes
	// accumulating on top of them).
	retired map[string]UserStats
}

type gateUser struct {
	held    int
	waiting int

	grants  uint64 // slots granted within the minimum share
	borrows uint64 // slots granted beyond it, from idle capacity
	waits   uint64 // acquisitions that blocked at least once
}

// UserStats reports one registered user's gate activity.
type UserStats struct {
	Held    int
	Grants  uint64 // acquisitions granted within the minimum share
	Borrows uint64 // acquisitions granted beyond it (borrowed idle capacity)
	Waits   uint64 // acquisitions that blocked at least once
}

// NewGate builds a gate with the given slot capacity (minimum 1).
func NewGate(capacity int) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	g := &Gate{cap: capacity, users: make(map[string]*gateUser), bg: make(map[string]*gateUser), retired: make(map[string]UserStats)}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Capacity returns the gate's total slot count.
func (g *Gate) Capacity() int { return g.cap }

// Register adds a user to the share computation. Registering an
// existing id is a no-op. Shares shrink as users register: with u
// users each is guaranteed max(1, capacity/u) slots.
func (g *Gate) Register(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.users[id] == nil {
		u := &gateUser{}
		if r, ok := g.retired[id]; ok {
			// Resume the retired counters so an id's totals stay
			// monotonic across close/reopen cycles.
			u.grants, u.borrows, u.waits = r.Grants, r.Borrows, r.Waits
			delete(g.retired, id)
		}
		g.users[id] = u
		// Shares shrank; nobody new can run, no wakeup needed.
	}
}

// Unregister removes a user. Its held slots drain naturally through
// Release; pending Acquires on the id still complete (treated as an
// anonymous borrower). Shares grow, so waiters are re-examined.
func (g *Gate) Unregister(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.users[id]
	if u == nil {
		return
	}
	invariant.Assertf(u.waiting == 0,
		"iosched: unregistering %q with %d waiters", id, u.waiting)
	g.retired[id] = UserStats{Grants: u.grants, Borrows: u.borrows, Waits: u.waits}
	delete(g.users, id)
	g.cond.Broadcast()
}

// minShareLocked is each registered user's guaranteed slot count.
func (g *Gate) minShareLocked() int {
	n := len(g.users)
	if n == 0 {
		return g.cap
	}
	if s := g.cap / n; s > 1 {
		return s
	}
	return 1
}

// starvedWaiterLocked reports whether some registered user is blocked
// below its minimum share — the condition that suspends borrowing.
func (g *Gate) starvedWaiterLocked(minShare int) bool {
	for _, u := range g.users {
		if u.waiting > 0 && u.held < minShare {
			return true
		}
	}
	return false
}

// Acquire blocks until a slot is available to id under the share
// policy, then takes it. Unknown ids acquire as pure borrowers: they
// have no guaranteed share and always yield to starved registered
// users.
func (g *Gate) Acquire(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.users[id]
	if u != nil {
		u.waiting++
	}
	blocked := false
	granted := func() {
		if blocked {
			g.fgWaiting--
			if u != nil {
				u.waits++
			}
		}
	}
	for {
		minShare := g.minShareLocked()
		if g.held < g.cap {
			if u != nil && u.held < minShare {
				// Within the guaranteed share: always runnable.
				g.held++
				u.held++
				u.waiting--
				u.grants++
				granted()
				return
			}
			if !g.starvedWaiterLocked(minShare) {
				// Idle capacity and nobody starved: borrow it.
				g.held++
				if u != nil {
					u.held++
					u.waiting--
					u.borrows++
				}
				granted()
				return
			}
		}
		if !blocked {
			blocked = true
			g.fgWaiting++
		}
		g.cond.Wait()
	}
}

// AcquireBackground blocks until a slot can be granted to the
// background class: only while capacity is idle, no foreground
// acquirer is blocked, and no registered user is starved below its
// share. Background users have no minimum share of their own — they
// are pure scavengers of idle capacity (the GC service uses this so
// its copy I/O never displaces a foreground upload).
func (g *Gate) AcquireBackground(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.bg[id]
	if u == nil {
		u = &gateUser{}
		g.bg[id] = u
	}
	u.waiting++
	blocked := false
	for {
		if g.held < g.cap && g.fgWaiting == 0 && !g.starvedWaiterLocked(g.minShareLocked()) {
			g.held++
			u.held++
			u.waiting--
			u.borrows++
			if blocked {
				u.waits++
			}
			return
		}
		blocked = true
		g.cond.Wait()
	}
}

// ReleaseBackground returns a slot taken by AcquireBackground(id).
func (g *Gate) ReleaseBackground(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	invariant.Assertf(g.held > 0, "iosched: background release of %q below zero", id)
	g.held--
	u := g.bg[id]
	invariant.Assertf(u != nil && u.held > 0, "iosched: background user %q releasing unheld slot", id)
	u.held--
	g.cond.Broadcast()
}

// Release returns a slot taken by Acquire(id).
func (g *Gate) Release(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	invariant.Assertf(g.held > 0, "iosched: release of %q below zero", id)
	g.held--
	if u := g.users[id]; u != nil {
		invariant.Assertf(u.held > 0, "iosched: user %q releasing unheld slot", id)
		u.held--
	}
	g.cond.Broadcast()
}

// Stats returns the per-user snapshot for id (zero if unregistered).
// Background-class ids (AcquireBackground) are looked up too; their
// grants all count as borrows by construction.
func (g *Gate) Stats(id string) UserStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.users[id]
	if u == nil {
		u = g.bg[id]
	}
	if u == nil {
		return g.retired[id]
	}
	return UserStats{Held: u.held, Grants: u.grants, Borrows: u.borrows, Waits: u.waits}
}
