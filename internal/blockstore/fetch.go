package blockstore

import (
	"fmt"

	"lsvd/internal/block"
	"lsvd/internal/extmap"
	"lsvd/internal/invariant"
)

// Read-miss fetch machinery. A span — one or more map runs living close
// together in the same object — is served by a single backend range
// GET over a window aligned to the prefetch quantum. Windows are
// singleflighted: an in-flight or retained fetch of the same
// (object, window) is joined instead of re-issued, so concurrent
// readers missing on the same cold data share one GET (no thundering
// herd), and a reader arriving while the previous miss's cache
// admission is still pending (admission runs off the ack path, see
// core) is served from the retained bytes instead of the backend.
//
// Object data is immutable once written and windows are keyed by the
// object sequence number from a fresh map lookup, so sharing bytes
// across readers can never return a wrong version; map movement (GC)
// only ever makes a window unreferenced, never stale.

// fetchKey identifies one object-range window.
type fetchKey struct {
	obj    uint32
	lo, hi block.LBA // object sector range, half-open
}

// flight is an in-progress or retained window fetch. refs counts the
// Fetch handles not yet released; the entry leaves the table when it
// reaches zero (or immediately on fetch error, so failures are not
// cached).
type flight struct {
	key  fetchKey
	done chan struct{}
	raw  []byte
	err  error
	refs int
}

// Fetch is a handle on a fetched object window. Raw holds the window's
// bytes starting at object sector Lo; the handle keeps the window
// joinable by concurrent readers until Release.
type Fetch struct {
	Obj    uint32
	Lo     block.LBA // object sector offset of Raw[0]
	Raw    []byte
	Shared bool // joined another reader's in-flight or retained fetch
	s      *Store
	f      *flight
}

// Release drops the caller's reference. The caller that keeps the
// window alive across an asynchronous cache admission releases it when
// the admission completes; until then other readers join it for free.
func (f *Fetch) Release() {
	if f.f == nil {
		return
	}
	f.s.fetchMu.Lock()
	invariant.LockOrder("bs.fetchMu")
	f.f.refs--
	invariant.Assertf(f.f.refs >= 0,
		"blockstore: fetch window %d@[%d,%d) released more times than acquired",
		f.f.key.obj, f.f.key.lo, f.f.key.hi)
	if f.f.refs <= 0 {
		delete(f.s.flights, f.f.key)
	}
	invariant.LockRelease("bs.fetchMu")
	f.s.fetchMu.Unlock()
	f.f = nil
}

// Slice returns the window's bytes for one of the span's runs. The
// returned slice aliases Raw and is valid for the life of the handle.
func (f *Fetch) Slice(run extmap.Run) ([]byte, error) {
	off := (run.Target.Off - f.Lo).Bytes()
	if run.Target.Obj != f.Obj || off < 0 || off+run.Bytes() > int64(len(f.Raw)) {
		return nil, fmt.Errorf("blockstore: run %v (%v) outside fetched window %d@[%d,+%d)", run.Extent, run.Target, f.Obj, f.Lo, len(f.Raw))
	}
	return f.Raw[off : off+run.Bytes()], nil
}

// FetchSpan fetches, with a single range GET, a window of one object
// covering every run in the span. All runs must be present and target
// the same object; the caller groups and orders them (the core
// coalesces adjacent misses into spans). windowSectors > 0 aligns the
// window outward to that quantum (clamped to the object's data region)
// — identical misses then collapse onto identical keys, and the slack
// is the temporal prefetch the object layout gives for free. The GET
// itself is bounded by the store's fetcher pool (Config.FetchDepth)
// and deduplicated against other in-flight windows.
func (s *Store) FetchSpan(runs []extmap.Run, windowSectors uint32) (*Fetch, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("blockstore: FetchSpan of empty span")
	}
	obj := runs[0].Target.Obj
	lo, hi := runs[0].Target.Off, runs[0].Target.Off
	for _, r := range runs {
		if !r.Present || r.Target.Obj != obj {
			return nil, fmt.Errorf("blockstore: span mixes objects or absent runs (%v)", r.Extent)
		}
		if r.Target.Off < lo {
			lo = r.Target.Off
		}
		if end := r.Target.Off + block.LBA(r.Sectors); end > hi {
			hi = end
		}
	}
	s.mu.RLock()
	invariant.LockOrder("bs.mu")
	o := s.objects[obj]
	name := s.name(obj)
	invariant.LockRelease("bs.mu")
	s.mu.RUnlock()
	if q := block.LBA(windowSectors); q > 0 && o != nil {
		// Align to the prefetch quantum within the data region so
		// concurrent misses in the same neighborhood share a key.
		dataStart := block.LBA(o.hdrSectors)
		dataEnd := dataStart + block.LBA(o.dataSectors)
		lo = lo / q * q
		if lo < dataStart {
			lo = dataStart
		}
		hi = (hi + q - 1) / q * q
		if hi > dataEnd {
			hi = dataEnd
		}
	}
	if len(runs) > 1 {
		s.fetchStats.coalesced.Add(uint64(len(runs) - 1))
	}
	key := fetchKey{obj: obj, lo: lo, hi: hi}

	s.fetchMu.Lock()
	invariant.LockOrder("bs.fetchMu")
	if f, ok := s.flights[key]; ok {
		f.refs++
		invariant.LockRelease("bs.fetchMu")
		s.fetchMu.Unlock()
		<-f.done
		if f.err != nil {
			// Errored flights were already removed from the table by
			// the leader; there is nothing to release.
			return nil, f.err
		}
		s.fetchStats.deduped.Add(1)
		return &Fetch{Obj: obj, Lo: lo, Raw: f.raw, Shared: true, s: s, f: f}, nil
	}
	f := &flight{key: key, done: make(chan struct{}), refs: 1}
	s.flights[key] = f
	invariant.LockRelease("bs.fetchMu")
	s.fetchMu.Unlock()

	if s.fetchSem != nil {
		s.fetchSem <- struct{}{}
	}
	s.fetchStats.gets.Add(1)
	raw, err := s.cfg.Store.GetRange(s.ctx, name, lo.Bytes(), (hi - lo).Bytes())
	if s.fetchSem != nil {
		<-s.fetchSem
	}
	if err == nil && int64(len(raw)) < (hi-lo).Bytes() {
		err = fmt.Errorf("blockstore: short object read: %d of %d bytes", len(raw), (hi - lo).Bytes())
	}
	f.raw, f.err = raw, err
	if err != nil {
		s.fetchMu.Lock()
		invariant.LockOrder("bs.fetchMu")
		delete(s.flights, key)
		invariant.LockRelease("bs.fetchMu")
		s.fetchMu.Unlock()
		close(f.done)
		return nil, err
	}
	close(f.done)
	return &Fetch{Obj: obj, Lo: lo, Raw: raw, s: s, f: f}, nil
}

// WindowExtras maps the parts of a fetched window not covered by skip
// back to virtual-disk extents via the object header (§3.2 temporal
// prefetch), keeping only portions the map still assigns to this
// object. Best-effort: a header fetch failure returns nil. The header
// decode and fetch happen off the store lock; only the map
// verification walk takes the read lock.
func (s *Store) WindowExtras(f *Fetch, skip []block.Extent) []Prefetched {
	hdr, err := s.header(f.Obj)
	if err != nil {
		return nil
	}
	lo := f.Lo
	hi := lo + block.LBA(len(f.Raw)>>block.SectorShift)
	var extras []Prefetched
	cursor := block.LBA(hdr.hdrSectors)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range hdr.extents {
		if e.SrcSeq == trimMarker {
			continue
		}
		extOff := cursor
		cursor += block.LBA(e.Sectors)
		// Portion of this extent inside the fetched window.
		wLo := max(extOff, lo)
		wHi := min(cursor, hi)
		if wLo >= wHi {
			continue
		}
		vext := block.Extent{LBA: e.LBA + (wLo - extOff), Sectors: uint32(wHi - wLo)}
		if coveredBy(vext, skip) {
			continue
		}
		for _, live := range s.m.Lookup(vext) {
			if !live.Present || live.Target.Obj != f.Obj {
				continue
			}
			off := (live.Target.Off - lo).Bytes()
			if off < 0 || off+live.Bytes() > int64(len(f.Raw)) {
				continue
			}
			d := make([]byte, live.Bytes())
			copy(d, f.Raw[off:])
			extras = append(extras, Prefetched{Ext: live.Extent, Data: d})
		}
	}
	return extras
}

// coveredBy reports whether ext lies fully inside one of the skip
// extents (the demand runs the caller already handled).
func coveredBy(ext block.Extent, skip []block.Extent) bool {
	for _, sk := range skip {
		if ext.LBA >= sk.LBA && ext.End() <= sk.End() {
			return true
		}
	}
	return false
}
