package blockstore

import (
	"bytes"
	"strings"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/journal"
	"lsvd/internal/objstore"
)

// ckptHistory builds a volume with three generations of data, each
// followed by an explicit checkpoint, and returns the extents written.
// Layout (Create's initial checkpoint is seq 1):
//
//	seq 2 data A, seq 3 ckpt (prev 1)
//	seq 4 data B, seq 5 ckpt (prev 3)
//	seq 6 data C, seq 7 ckpt (prev 5)
func ckptHistory(t *testing.T, store objstore.Store) (a, b, c block.Extent, dataA, dataB []byte) {
	t.Helper()
	s := newVolume(t, store, Config{})
	a = block.Extent{LBA: 0, Sectors: 8}
	b = block.Extent{LBA: 100, Sectors: 8}
	c = block.Extent{LBA: 200, Sectors: 8}
	dataA = payload(1, int(a.Bytes()))
	dataB = payload(2, int(b.Bytes()))
	for i, w := range []struct {
		ext  block.Extent
		data []byte
	}{{a, dataA}, {b, dataB}, {c, payload(3, int(c.Bytes()))}} {
		if err := s.Append(uint64(i+1), w.ext, w.data); err != nil {
			t.Fatal(err)
		}
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if s.nextSeq != 8 {
		t.Fatalf("history layout drifted: nextSeq = %d, want 8", s.nextSeq)
	}
	return a, b, c, dataA, dataB
}

// OpenAt below the newest checkpoint must walk the prevCkpt chain from
// the superblock's pointer back to the newest checkpoint at or before
// the limit, then replay only up to the limit.
func TestOpenAtWalksCheckpointChain(t *testing.T) {
	store := objstore.NewMem()
	a, b, c, dataA, dataB := ckptHistory(t, store)

	// Limit 4: the walk is 7 → 5 → 3; replay covers (3, 4].
	s, err := OpenAt(ctx, Config{Volume: "vol", Store: store, VolSectors: volSectors}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.lastCkpt != 3 {
		t.Fatalf("landed on checkpoint %d, want 3", s.lastCkpt)
	}
	if got := readAll(t, s, a); !bytes.Equal(got, dataA) {
		t.Fatal("first generation lost")
	}
	if got := readAll(t, s, b); !bytes.Equal(got, dataB) {
		t.Fatal("second generation (replayed past the older checkpoint) lost")
	}
	for _, run := range s.Lookup(c) {
		if run.Present {
			t.Fatalf("third generation visible at limit 4: %v", run)
		}
	}
	// A snapshot mount never deletes "stranded" objects above the limit.
	if _, err := store.Get(ctx, objName("vol", 6)); err != nil {
		t.Fatalf("object above the mount limit was deleted: %v", err)
	}
}

// OpenAt exactly at a checkpoint's own sequence lands on it with no
// replay at all.
func TestOpenAtLandsOnOlderCheckpoint(t *testing.T) {
	store := objstore.NewMem()
	a, b, _, dataA, _ := ckptHistory(t, store)

	s, err := OpenAt(ctx, Config{Volume: "vol", Store: store, VolSectors: volSectors}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.lastCkpt != 3 {
		t.Fatalf("landed on checkpoint %d, want 3", s.lastCkpt)
	}
	if got := readAll(t, s, a); !bytes.Equal(got, dataA) {
		t.Fatal("first generation lost")
	}
	for _, run := range s.Lookup(b) {
		if run.Present {
			t.Fatalf("second generation visible at limit 3: %v", run)
		}
	}
	if s.stats.recoveredObjects != 0 {
		t.Fatalf("replayed %d objects at an exact checkpoint landing", s.stats.recoveredObjects)
	}
}

// rewriteCheckpointPrev re-encodes checkpoint object seq with its
// prevCkpt pointer replaced — a targeted corruption of the chain.
func rewriteCheckpointPrev(t *testing.T, store objstore.Store, seq, prev uint32) {
	t.Helper()
	raw, err := store.Get(ctx, objName("vol", seq))
	if err != nil {
		t.Fatal(err)
	}
	h, pl, _, err := journal.Decode(raw, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := decodeCheckpoint(pl)
	if err != nil {
		t.Fatal(err)
	}
	p.prevCkpt = prev
	body := encodeCheckpointForFuzz(p)
	h.DataLen = uint64(len(body))
	rec, err := journal.EncodeSectorHeader(h, body)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, objName("vol", seq), rec); err != nil {
		t.Fatal(err)
	}
}

// A corrupt prevCkpt chain — a self-reference, a forward pointer, or a
// multi-node cycle — must surface as an error, never an infinite walk.
func TestOpenAtBrokenCheckpointChain(t *testing.T) {
	for _, tc := range []struct {
		name string
		prev map[uint32]uint32 // ckpt seq -> corrupted prevCkpt
	}{
		{"self-reference", map[uint32]uint32{5: 5}},
		{"forward-pointer", map[uint32]uint32{5: 7}},
		{"two-node-cycle", map[uint32]uint32{7: 5, 5: 7}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store := objstore.NewMem()
			ckptHistory(t, store)
			for seq, prev := range tc.prev {
				rewriteCheckpointPrev(t, store, seq, prev)
			}
			// Limit 2 forces the walk below the corrupted links.
			_, err := OpenAt(ctx, Config{Volume: "vol", Store: store, VolSectors: volSectors}, 2)
			if err == nil {
				t.Fatal("OpenAt on a broken chain succeeded")
			}
			if !strings.Contains(err.Error(), "no checkpoint at or before seq") {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}
