package nbd

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"sort"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/core"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
	"lsvd/internal/vdisk"
)

// memVDisk is a simple vdisk.Disk over a MemDevice.
type memVDisk struct{ dev *simdev.MemDevice }

func (d memVDisk) ReadAt(p []byte, off int64) error  { return d.dev.ReadAt(p, off) }
func (d memVDisk) WriteAt(p []byte, off int64) error { return d.dev.WriteAt(p, off) }
func (d memVDisk) Flush() error                      { return d.dev.Flush() }
func (d memVDisk) Trim(off, n int64) error           { return nil }
func (d memVDisk) Size() int64                       { return d.dev.Size() }

func startServer(t *testing.T, exports ...Export) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(exports...)
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func TestReadWriteFlushOverNBD(t *testing.T) {
	disk := memVDisk{simdev.NewMem(16 * block.MiB)}
	_, addr := startServer(t, Export{Name: "test", Disk: disk})
	c, err := Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Size() != 16*block.MiB {
		t.Fatalf("size %d", c.Size())
	}
	data := make([]byte, 8192)
	rand.New(rand.NewSource(1)).Read(data)
	if err := c.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("NBD round trip mismatch")
	}
}

func TestUnknownExportRejected(t *testing.T) {
	_, addr := startServer(t, Export{Name: "only", Disk: memVDisk{simdev.NewMem(1 << 20)}})
	if _, err := Dial(addr, "nope"); err == nil {
		t.Fatal("unknown export accepted")
	}
}

func TestDefaultExport(t *testing.T) {
	_, addr := startServer(t, Export{Name: "only", Disk: memVDisk{simdev.NewMem(1 << 20)}})
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatalf("default export: %v", err)
	}
	c.Close()
}

func TestList(t *testing.T) {
	_, addr := startServer(t,
		Export{Name: "a", Disk: memVDisk{simdev.NewMem(1 << 20)}},
		Export{Name: "b", Disk: memVDisk{simdev.NewMem(1 << 20)}},
	)
	names, err := List(addr)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("list %v", names)
	}
}

func TestIOErrorsReportedNotFatal(t *testing.T) {
	disk := memVDisk{simdev.NewMem(1 << 20)}
	_, addr := startServer(t, Export{Name: "t", Disk: disk})
	c, err := Dial(addr, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Out-of-bounds read: error reply, connection survives.
	if err := c.ReadAt(make([]byte, 4096), 2<<20); err == nil {
		t.Fatal("OOB read succeeded")
	}
	if err := c.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	disk := memVDisk{simdev.NewMem(64 * block.MiB)}
	_, addr := startServer(t, Export{Name: "t", Disk: disk})
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			c, err := Dial(addr, "t")
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			buf := bytes.Repeat([]byte{byte(g + 1)}, 4096)
			rd := make([]byte, 4096)
			for i := 0; i < 50; i++ {
				off := int64(g)*(8<<20) + int64(i)*4096
				if err := c.WriteAt(buf, off); err != nil {
					done <- err
					return
				}
				if err := c.ReadAt(rd, off); err != nil {
					done <- err
					return
				}
				if rd[0] != byte(g+1) {
					done <- bytes.ErrTooLarge
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestLSVDOverNBD drives a real LSVD volume through the NBD server —
// the full paper stack minus the kernel.
func TestLSVDOverNBD(t *testing.T) {
	disk, err := core.Create(context.Background(), core.Options{
		Volume: "vol", Store: objstore.NewMem(),
		CacheDev: simdev.NewMem(128 * block.MiB), VolBytes: 128 * block.MiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	var _ vdisk.Disk = disk
	_, addr := startServer(t, Export{Name: "lsvd", Disk: disk})
	c, err := Dial(addr, "lsvd")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 64*1024)
	rand.New(rand.NewSource(2)).Read(data)
	if err := c.WriteAt(data, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Trim(1<<20, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.ReadAt(got, 1<<20); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, data...)
	for i := 0; i < 4096; i++ {
		want[i] = 0
	}
	if !bytes.Equal(got, want) {
		t.Fatal("LSVD-over-NBD data mismatch")
	}
}

// TestPipelinedQueueDepth issues a window of requests on ONE
// connection before collecting any reply, exercising the server's
// per-connection worker pool (replies may arrive in any order and are
// matched by handle).
func TestPipelinedQueueDepth(t *testing.T) {
	disk := memVDisk{simdev.NewMem(64 * block.MiB)}
	_, addr := startServer(t, Export{Name: "t", Disk: disk})
	c, err := Dial(addr, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const window = 16
	const bs = 4096
	pattern := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, bs) }

	// Pipelined writes: all requests on the wire before any reply.
	writeHandles := make(map[uint64]int, window)
	for i := 0; i < window; i++ {
		h, err := c.request(cmdWrite, uint64(i*bs), bs, pattern(i))
		if err != nil {
			t.Fatal(err)
		}
		writeHandles[h] = i
	}
	readReply := func() (uint64, uint32) {
		var hdr [16]byte
		if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
			t.Fatal(err)
		}
		if binary.BigEndian.Uint32(hdr[0:]) != simpleReplyMagic {
			t.Fatal("bad reply magic")
		}
		return binary.BigEndian.Uint64(hdr[8:]), binary.BigEndian.Uint32(hdr[4:])
	}
	for i := 0; i < window; i++ {
		h, errno := readReply()
		if _, ok := writeHandles[h]; !ok {
			t.Fatalf("unknown write reply handle %d", h)
		}
		delete(writeHandles, h)
		if errno != 0 {
			t.Fatalf("write errno %d", errno)
		}
	}

	// Pipelined reads: replies carry payloads; match by handle.
	readHandles := make(map[uint64]int, window)
	for i := 0; i < window; i++ {
		h, err := c.request(cmdRead, uint64(i*bs), bs, nil)
		if err != nil {
			t.Fatal(err)
		}
		readHandles[h] = i
	}
	for i := 0; i < window; i++ {
		h, errno := readReply()
		idx, ok := readHandles[h]
		if !ok {
			t.Fatalf("unknown read reply handle %d", h)
		}
		delete(readHandles, h)
		if errno != 0 {
			t.Fatalf("read errno %d", errno)
		}
		got := make([]byte, bs)
		if _, err := io.ReadFull(c.conn, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pattern(idx)) {
			t.Fatalf("read %d returned wrong data", idx)
		}
	}
}

// TestTwoExportsConcurrentClients serves two exports from ONE server
// and hammers both from concurrent clients — the multi-volume host
// topology (one NBD endpoint, one export per volume). Each export
// must see only its own clients' writes.
func TestTwoExportsConcurrentClients(t *testing.T) {
	diskA := memVDisk{simdev.NewMem(32 * block.MiB)}
	diskB := memVDisk{simdev.NewMem(32 * block.MiB)}
	_, addr := startServer(t,
		Export{Name: "volA", Disk: diskA},
		Export{Name: "volB", Disk: diskB},
	)

	const clientsPerExport = 3
	const iters = 40
	done := make(chan error, 2*clientsPerExport)
	hammer := func(export string, tag byte, id int) {
		c, err := Dial(addr, export)
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		r := rand.New(rand.NewSource(int64(id)))
		buf := make([]byte, 8192)
		for i := 0; i < iters; i++ {
			// Each client owns a disjoint stripe of its export, tagged
			// with the export's byte so cross-export bleed is caught.
			off := int64(id)*8*block.MiB + r.Int63n(512)*8192
			for j := range buf {
				buf[j] = tag ^ byte(i)
			}
			if err := c.WriteAt(buf, off); err != nil {
				done <- err
				return
			}
			got := make([]byte, len(buf))
			if err := c.ReadAt(got, off); err != nil {
				done <- err
				return
			}
			if !bytes.Equal(got, buf) {
				done <- io.ErrUnexpectedEOF
				return
			}
			if i%8 == 0 {
				if err := c.Flush(); err != nil {
					done <- err
					return
				}
			}
		}
		done <- nil
	}
	for id := 0; id < clientsPerExport; id++ {
		go hammer("volA", 0xA0, id)
		go hammer("volB", 0xB0, id)
	}
	for i := 0; i < 2*clientsPerExport; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
