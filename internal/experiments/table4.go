package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"lsvd/internal/baseline/bcache"
	"lsvd/internal/baseline/rbd"
	"lsvd/internal/block"
	"lsvd/internal/cluster"
	"lsvd/internal/consistency"
	"lsvd/internal/core"
	"lsvd/internal/iomodel"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

// Table4 reproduces Table 4's crash tests: a large stamped-write
// workload (standing in for the 74K-file recursive copy) interrupted
// by a reset, then the cache is lost entirely. "Mounted" means the
// recovered image is a consistent prefix of the committed history;
// "FSCK" means it is not (§4.4, DESIGN.md's consistency substitution).
func Table4(ctx context.Context, e Env) (*Table, error) {
	t := &Table{
		Title:  "Table 4: crash tests, cache deleted after VM reset",
		Header: []string{"system", "trial", "mounted", "fsck needed"},
	}
	for trial := 1; trial <= 3; trial++ {
		rep, err := crashTrialBcache(e, int64(trial))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"bcache+RBD", fmt.Sprint(trial), yn(rep.Mountable), yn(!rep.Mountable)})
	}
	for trial := 1; trial <= 3; trial++ {
		rep, err := crashTrialLSVD(ctx, e, int64(trial))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"LSVD", fmt.Sprint(trial), yn(rep.Mountable), yn(!rep.Mountable)})
	}
	return t, nil
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// copyWorkload emulates the block-level pattern of a recursive copy of
// many small files onto a fresh file system: clustered data writes
// plus scattered metadata updates, with periodic journal commits.
func copyWorkload(w *consistency.Writer, blocks int64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	cursor := int64(1)
	for i := 0; i < 1500; i++ {
		switch rng.Intn(10) {
		case 0, 1: // metadata: small scattered write
			if err := w.Write(rng.Int63n(blocks-2), 1); err != nil {
				return err
			}
		default: // file data: clustered
			n := rng.Intn(8) + 1
			if cursor+int64(n) >= blocks {
				cursor = 1
			}
			if err := w.Write(cursor, n); err != nil {
				return err
			}
			cursor += int64(n)
		}
		if i%50 == 49 {
			if err := w.Barrier(); err != nil {
				return err
			}
		}
	}
	return nil
}

func crashTrialLSVD(ctx context.Context, e Env, trial int64) (consistency.Report, error) {
	cacheBytes := int64(256 * block.MiB)
	volBytes := int64(128 * block.MiB)
	store := objstore.NewMem()
	opts := core.Options{
		Volume: "vol", Store: store,
		CacheDev: simdev.NewMem(cacheBytes), VolBytes: volBytes,
		BatchBytes: 1 * block.MiB,
	}
	e.tune(&opts)
	disk, err := core.Create(ctx, opts)
	if err != nil {
		return consistency.Report{}, err
	}
	w, err := consistency.NewWriter(disk)
	if err != nil {
		return consistency.Report{}, err
	}
	if err := copyWorkload(w, volBytes/block.BlockSize, trial); err != nil {
		return consistency.Report{}, err
	}
	// VM reset + cache deleted (§4.4): kill the destage pipeline as the
	// reset would, then reopen with a blank cache.
	disk.Kill()
	opts.CacheDev = simdev.NewMem(cacheBytes)
	disk2, err := core.Open(ctx, opts)
	if err != nil {
		return consistency.Report{}, err
	}
	return w.Check(disk2)
}

func crashTrialBcache(e Env, trial int64) (consistency.Report, error) {
	pool, err := cluster.New(cluster.SSDConfig1())
	if err != nil {
		return consistency.Report{}, err
	}
	volBytes := int64(128 * block.MiB)
	backing, err := rbd.New(rbd.Options{Volume: "img", Pool: pool, VolBytes: volBytes})
	if err != nil {
		return consistency.Report{}, err
	}
	dev := simdev.NewMetered(simdev.NewMem(256*block.MiB), iomodel.NVMeP3700)
	c, err := bcache.New(bcache.Options{Dev: dev, Backing: backing})
	if err != nil {
		return consistency.Report{}, err
	}
	w, err := consistency.NewWriter(c)
	if err != nil {
		return consistency.Report{}, err
	}
	if err := copyWorkload(w, volBytes/block.BlockSize, trial); err != nil {
		return consistency.Report{}, err
	}
	// The reset lands at a different point in each trial: before any
	// write-back started, mid-write-back, or after it finished. Only
	// the mid-write-back crash exposes bcache's LBA-ordered (non
	// prefix) destage — matching the paper's 1-failure-in-3 outcome.
	var budget int64
	switch trial % 3 {
	case 1:
		budget = 1 << 62 // write-back completed before the reset
	case 2:
		// Experiment-scale write counter: nowhere near overflow.
		vers := int64(w.Version() / 3)
		budget = vers * block.BlockSize // interrupted
	default:
		budget = 0 // write-back never started
	}
	if err := c.WriteBack(budget); err != nil {
		return consistency.Report{}, err
	}
	recovered := c.Crash()
	return w.Check(recovered)
}
