// Package costmodel reproduces the deployability arithmetic of the
// paper's §4.9: the monthly cost of provisioned-IOPS EBS versus
// LSVD running against S3 from an EC2 instance's local NVMe, at 2022
// us-east-1 list prices.
package costmodel

import "fmt"

// Prices holds the unit prices used (2022 us-east-1 on-demand).
type Prices struct {
	// EBS io2: tiered per provisioned IOPS-month.
	EBSIOPSTier1 float64 // first 32,000 IOPS
	EBSIOPSTier2 float64 // 32,001 - 64,000
	EBSPerGB     float64 // io2 storage per GB-month

	S3PerGB      float64 // standard storage per GB-month
	S3PutPer1000 float64
	S3GetPer1000 float64
}

// AWS2022 is the price book the paper's claim is evaluated against.
var AWS2022 = Prices{
	EBSIOPSTier1: 0.065, EBSIOPSTier2: 0.046, EBSPerGB: 0.125,
	S3PerGB: 0.023, S3PutPer1000: 0.005, S3GetPer1000: 0.0004,
}

// Workload describes the sustained I/O the volume serves.
type Workload struct {
	IOPS        float64 // client operations per second
	WriteFrac   float64 // fraction of ops that are writes
	IOSizeBytes float64
	VolumeGB    float64
	BatchBytes  float64 // LSVD object size
	// DutyCycle is the fraction of the month the workload actually
	// runs (the paper's benchmarks run minutes, not months).
	DutyCycle float64
}

// Result is a monthly cost comparison.
type Result struct {
	EBSMonthly  float64
	LSVDMonthly float64
	Ratio       float64
}

const secondsPerMonth = 30 * 24 * 3600

// Compare computes monthly EBS vs LSVD-on-S3 cost for the workload.
func Compare(p Prices, w Workload) Result {
	if w.DutyCycle <= 0 {
		w.DutyCycle = 1
	}
	// EBS: IOPS must be provisioned for the peak regardless of duty
	// cycle; storage for the volume.
	iops := w.IOPS
	var ebsIOPS float64
	if iops > 32000 {
		ebsIOPS = 32000*p.EBSIOPSTier1 + (iops-32000)*p.EBSIOPSTier2
	} else {
		ebsIOPS = iops * p.EBSIOPSTier1
	}
	ebs := ebsIOPS + w.VolumeGB*p.EBSPerGB

	// LSVD: batched writes mean one PUT per BatchBytes of writes;
	// reads are absorbed by the local cache in the paper's benchmark,
	// but charge the miss path anyway at 1 GET per read op * missRate.
	writeBytesPerSec := w.IOPS * w.WriteFrac * w.IOSizeBytes
	putsPerSec := writeBytesPerSec / w.BatchBytes
	const readMissRate = 0.05
	getsPerSec := w.IOPS * (1 - w.WriteFrac) * readMissRate
	seconds := secondsPerMonth * w.DutyCycle
	lsvd := w.VolumeGB*p.S3PerGB +
		putsPerSec*seconds/1000*p.S3PutPer1000 +
		getsPerSec*seconds/1000*p.S3GetPer1000

	r := Result{EBSMonthly: ebs, LSVDMonthly: lsvd}
	if lsvd > 0 {
		r.Ratio = ebs / lsvd
	}
	return r
}

// PaperScenario is §4.9's setting: ~50K provisioned IOPS equivalent,
// 80 GB volume, 16 KiB writes batched into 8 MiB objects, running the
// paper's benchmark duty cycle (~1%: hours of benchmarking a month).
func PaperScenario() Workload {
	return Workload{
		IOPS: 50000, WriteFrac: 1.0, IOSizeBytes: 16 * 1024,
		VolumeGB: 80, BatchBytes: 8 << 20, DutyCycle: 0.01,
	}
}

// String renders a result like the paper's comparison.
func (r Result) String() string {
	return fmt.Sprintf("EBS $%.0f/mo vs LSVD $%.2f/mo (%.0fx)", r.EBSMonthly, r.LSVDMonthly, r.Ratio)
}
