package readcache

import (
	"bytes"
	"math/rand"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/simdev"
)

func newCache(t *testing.T, devBytes int64, cfg Config) *Cache {
	t.Helper()
	c, err := New(simdev.NewMem(devBytes), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func readBack(t *testing.T, c *Cache, ext block.Extent) ([]byte, bool) {
	t.Helper()
	buf := make([]byte, ext.Bytes())
	full := true
	for _, run := range c.Lookup(ext) {
		if !run.Present {
			full = false
			continue
		}
		off := (run.LBA - ext.LBA).Bytes()
		if err := c.ReadAt(run.Target, buf[off:off+run.Bytes()]); err != nil {
			t.Fatal(err)
		}
	}
	return buf, full
}

func TestInsertLookup(t *testing.T) {
	c := newCache(t, 64*block.MiB, Config{})
	ext := block.Extent{LBA: 100, Sectors: 64}
	data := payload(1, int(ext.Bytes()))
	if err := c.Insert(ext, data); err != nil {
		t.Fatal(err)
	}
	got, full := readBack(t, c, ext)
	if !full || !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Inserts == 0 {
		t.Fatalf("stats %+v", st)
	}
	if _, full := readBack(t, c, block.Extent{LBA: 99999, Sectors: 8}); full {
		t.Fatal("phantom hit")
	}
	if c.Stats().Misses != 1 {
		t.Fatalf("miss not counted: %+v", c.Stats())
	}
}

func TestInsertSizeMismatchRejected(t *testing.T) {
	c := newCache(t, 64*block.MiB, Config{})
	if err := c.Insert(block.Extent{LBA: 0, Sectors: 8}, make([]byte, 1)); err == nil {
		t.Fatal("bad insert accepted")
	}
}

func TestInvalidate(t *testing.T) {
	c := newCache(t, 64*block.MiB, Config{})
	ext := block.Extent{LBA: 0, Sectors: 64}
	_ = c.Insert(ext, payload(1, int(ext.Bytes())))
	c.Invalidate(block.Extent{LBA: 16, Sectors: 16})
	runs := c.Lookup(ext)
	if len(runs) != 3 || runs[1].Present {
		t.Fatalf("invalidate failed: %+v", runs)
	}
}

func TestInsertSpanningSlabs(t *testing.T) {
	cfg := Config{SlabBytes: 1 * block.MiB, MapBytes: 1 * block.MiB}
	c := newCache(t, 8*block.MiB, cfg)
	// 3 MiB insert spans 3 slabs.
	ext := block.Extent{LBA: 0, Sectors: uint32(3 * block.MiB / block.SectorSize)}
	data := payload(2, int(ext.Bytes()))
	if err := c.Insert(ext, data); err != nil {
		t.Fatal(err)
	}
	got, full := readBack(t, c, ext)
	if !full || !bytes.Equal(got, data) {
		t.Fatal("spanning insert mismatch")
	}
	if c.Stats().LiveSlabs < 3 {
		t.Fatalf("slabs %+v", c.Stats())
	}
}

func TestFIFOEviction(t *testing.T) {
	cfg := Config{SlabBytes: 1 * block.MiB, MapBytes: 1 * block.MiB, Policy: FIFO}
	c := newCache(t, 1*block.MiB+block.BlockSize+4*block.MiB, cfg) // 4 slabs
	slabSectors := uint32(block.MiB / block.SectorSize)
	// Fill 6 slab-sized extents: the first two must be evicted.
	for i := 0; i < 6; i++ {
		ext := block.Extent{LBA: block.LBA(i) * block.LBA(slabSectors), Sectors: slabSectors}
		if err := c.Insert(ext, payload(int64(i), int(ext.Bytes()))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().SlabEvictions < 2 {
		t.Fatalf("evictions %+v", c.Stats())
	}
	// Oldest gone, newest present and correct.
	if _, full := readBack(t, c, block.Extent{LBA: 0, Sectors: slabSectors}); full {
		t.Fatal("oldest slab not evicted")
	}
	newest := block.Extent{LBA: 5 * block.LBA(slabSectors), Sectors: slabSectors}
	got, full := readBack(t, c, newest)
	if !full || !bytes.Equal(got, payload(5, int(newest.Bytes()))) {
		t.Fatal("newest data wrong after eviction")
	}
}

func TestLRUEvictionKeepsHotSlab(t *testing.T) {
	cfg := Config{SlabBytes: 1 * block.MiB, MapBytes: 1 * block.MiB, Policy: LRU}
	c := newCache(t, 1*block.MiB+block.BlockSize+3*block.MiB, cfg) // 3 slabs
	slabSectors := uint32(block.MiB / block.SectorSize)
	extA := block.Extent{LBA: 0, Sectors: slabSectors}
	extB := block.Extent{LBA: block.LBA(slabSectors), Sectors: slabSectors}
	_ = c.Insert(extA, payload(0, int(extA.Bytes())))
	_ = c.Insert(extB, payload(1, int(extB.Bytes())))
	// Touch A repeatedly so B becomes the LRU victim.
	for i := 0; i < 5; i++ {
		readBack(t, c, extA)
	}
	// Insert two more slab-sized extents, forcing evictions.
	for i := 2; i < 4; i++ {
		ext := block.Extent{LBA: block.LBA(i) * block.LBA(slabSectors), Sectors: slabSectors}
		_ = c.Insert(ext, payload(int64(i), int(ext.Bytes())))
	}
	if _, full := readBack(t, c, extA); !full {
		t.Fatal("hot slab evicted under LRU")
	}
	if _, full := readBack(t, c, extB); full {
		t.Fatal("cold slab survived under LRU")
	}
}

func TestPersistReload(t *testing.T) {
	dev := simdev.NewMem(64 * block.MiB)
	c, err := New(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ext := block.Extent{LBA: 1234, Sectors: 128}
	data := payload(9, int(ext.Bytes()))
	_ = c.Insert(ext, data)
	if err := c.Persist(); err != nil {
		t.Fatal(err)
	}
	// Reopen on the same device: map restored, data warm.
	c2, err := New(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, full := readBack(t, c2, ext)
	if !full || !bytes.Equal(got, data) {
		t.Fatal("persisted cache cold after reload")
	}
	// Eviction still cleans reloaded entries.
	if c2.Stats().MapExtents == 0 {
		t.Fatal("map empty after reload")
	}
}

func TestColdLoadOnGarbage(t *testing.T) {
	dev := simdev.NewMem(64 * block.MiB)
	_ = dev.WriteAt(payload(1, 8192), 0) // garbage where the map would be
	c, err := New(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().MapExtents != 0 {
		t.Fatal("garbage map loaded")
	}
}

func TestTooSmallRejected(t *testing.T) {
	if _, err := New(simdev.NewMem(2*block.MiB), Config{}); err == nil {
		t.Fatal("tiny device accepted")
	}
}

func TestOverwriteInsertServesNewest(t *testing.T) {
	c := newCache(t, 64*block.MiB, Config{})
	ext := block.Extent{LBA: 0, Sectors: 32}
	_ = c.Insert(ext, payload(1, int(ext.Bytes())))
	newer := payload(2, int(ext.Bytes()))
	_ = c.Insert(ext, newer)
	got, full := readBack(t, c, ext)
	if !full || !bytes.Equal(got, newer) {
		t.Fatal("stale insert served")
	}
}
