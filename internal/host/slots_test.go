package host

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"lsvd/internal/block"
	"lsvd/internal/core"
	"lsvd/internal/objstore"
	"lsvd/internal/simdev"
)

// gatedStore blocks Put calls on the slot table until released, and
// can be switched to fail them terminally — the two backend behaviors
// the slot-persistence path must survive.
type gatedStore struct {
	objstore.Store
	hold    chan struct{} // non-nil: slot PUTs block until closed
	reached chan struct{} // signaled once a slot PUT has started
	fail    atomic.Bool   // slot PUTs return a terminal error
}

func (g *gatedStore) Put(ctx context.Context, name string, data []byte) error {
	if name == slotsKey {
		if g.fail.Load() {
			return objstore.ErrBadName
		}
		if g.hold != nil {
			select {
			case g.reached <- struct{}{}:
			default:
			}
			<-g.hold
		}
	}
	return g.Store.Put(ctx, name, data)
}

// A slow or hung slot-table PUT (it can ride a whole retry backoff
// schedule) must not stall reads of the host state: Volumes and Disk
// take only the host lock, and saveSlots must persist off that lock.
// Regression test for saveSlots blocking on the backend under h.mu.
func TestSlotSavePersistsOffHostLock(t *testing.T) {
	ctx := context.Background()
	g := &gatedStore{
		Store:   objstore.NewMem(),
		hold:    make(chan struct{}),
		reached: make(chan struct{}, 1),
	}
	h := testHost(t, g, simdev.NewMem(48*block.MiB), 2)

	created := make(chan error, 1)
	go func() {
		_, err := h.Create(ctx, "v1", core.VolumeOptions{VolBytes: 4 * block.MiB})
		created <- err
	}()
	select {
	case <-g.reached:
	case <-time.After(5 * time.Second):
		t.Fatal("Create never reached the slot-table PUT")
	}

	// The PUT is parked. Host-state reads must still complete.
	stateRead := make(chan []string, 1)
	go func() {
		vols := h.Volumes()
		h.Disk("v1")
		stateRead <- vols
	}()
	select {
	case vols := <-stateRead:
		if len(vols) != 1 || vols[0] != "v1" {
			t.Fatalf("Volumes during slot PUT: %v, want [v1]", vols)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Volumes/Disk blocked behind the in-flight slot-table PUT")
	}

	close(g.hold)
	if err := <-created; err != nil {
		t.Fatalf("Create failed after release: %v", err)
	}
	d, ok := h.Disk("v1")
	if !ok {
		t.Fatal("volume not open after Create")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// A Delete whose slot-table PUT fails must put the in-memory lease
// back (the persisted table still names the volume), so the volume is
// neither orphaned nor double-assignable. Regression test for the
// rollback path introduced when saveSlots moved off the host lock.
func TestDeleteRestoresSlotWhenSaveFails(t *testing.T) {
	ctx := context.Background()
	g := &gatedStore{Store: objstore.NewMem()}
	h := testHost(t, g, simdev.NewMem(48*block.MiB), 2)

	d, err := h.Create(ctx, "v1", core.VolumeOptions{VolBytes: 4 * block.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	g.fail.Store(true)
	if err := h.Delete(ctx, "v1"); err == nil {
		t.Fatal("Delete succeeded despite the slot-table PUT failing")
	}
	if vols := h.Volumes(); len(vols) != 1 || vols[0] != "v1" {
		t.Fatalf("volume list after failed Delete: %v, want [v1]", vols)
	}

	// With the backend healthy again the volume opens and deletes.
	d, err = h.Open(ctx, "v1", core.VolumeOptions{})
	if err != nil {
		t.Fatalf("Open after failed Delete: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	g.fail.Store(false)
	if err := h.Delete(ctx, "v1"); err != nil {
		t.Fatalf("Delete after recovery: %v", err)
	}
	if vols := h.Volumes(); len(vols) != 0 {
		t.Fatalf("volume list after Delete: %v, want empty", vols)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}
