package readcache

import (
	"bytes"
	"math/rand"
	"testing"

	"lsvd/internal/block"
	"lsvd/internal/simdev"
)

func newCache(t *testing.T, devBytes int64, cfg Config) *Cache {
	t.Helper()
	c, err := New(simdev.NewMem(devBytes), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func readBack(t *testing.T, c *Cache, ext block.Extent) ([]byte, bool) {
	t.Helper()
	buf := make([]byte, ext.Bytes())
	full := true
	for _, run := range c.Lookup(ext) {
		if !run.Present {
			full = false
			continue
		}
		off := (run.LBA - ext.LBA).Bytes()
		if err := c.ReadAt(run.Target, buf[off:off+run.Bytes()]); err != nil {
			t.Fatal(err)
		}
	}
	return buf, full
}

func TestInsertLookup(t *testing.T) {
	c := newCache(t, 64*block.MiB, Config{})
	ext := block.Extent{LBA: 100, Sectors: 64}
	data := payload(1, int(ext.Bytes()))
	if err := c.Insert(ext, data); err != nil {
		t.Fatal(err)
	}
	got, full := readBack(t, c, ext)
	if !full || !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Inserts == 0 {
		t.Fatalf("stats %+v", st)
	}
	if _, full := readBack(t, c, block.Extent{LBA: 99999, Sectors: 8}); full {
		t.Fatal("phantom hit")
	}
	if c.Stats().Misses != 1 {
		t.Fatalf("miss not counted: %+v", c.Stats())
	}
}

func TestInsertSizeMismatchRejected(t *testing.T) {
	c := newCache(t, 64*block.MiB, Config{})
	if err := c.Insert(block.Extent{LBA: 0, Sectors: 8}, make([]byte, 1)); err == nil {
		t.Fatal("bad insert accepted")
	}
}

func TestInvalidate(t *testing.T) {
	c := newCache(t, 64*block.MiB, Config{})
	ext := block.Extent{LBA: 0, Sectors: 64}
	_ = c.Insert(ext, payload(1, int(ext.Bytes())))
	c.Invalidate(block.Extent{LBA: 16, Sectors: 16})
	runs := c.Lookup(ext)
	if len(runs) != 3 || runs[1].Present {
		t.Fatalf("invalidate failed: %+v", runs)
	}
}

func TestInsertSpanningSlabs(t *testing.T) {
	cfg := Config{SlabBytes: 1 * block.MiB, MapBytes: 1 * block.MiB}
	c := newCache(t, 8*block.MiB, cfg)
	// 3 MiB insert spans 3 slabs.
	ext := block.Extent{LBA: 0, Sectors: uint32(3 * block.MiB / block.SectorSize)}
	data := payload(2, int(ext.Bytes()))
	if err := c.Insert(ext, data); err != nil {
		t.Fatal(err)
	}
	got, full := readBack(t, c, ext)
	if !full || !bytes.Equal(got, data) {
		t.Fatal("spanning insert mismatch")
	}
	if c.Stats().LiveSlabs < 3 {
		t.Fatalf("slabs %+v", c.Stats())
	}
}

func TestFIFOEviction(t *testing.T) {
	cfg := Config{SlabBytes: 1 * block.MiB, MapBytes: 1 * block.MiB, Policy: FIFO}
	c := newCache(t, 1*block.MiB+block.BlockSize+4*block.MiB, cfg) // 4 slabs
	slabSectors := uint32(block.MiB / block.SectorSize)
	// Fill 6 slab-sized extents: the first two must be evicted.
	for i := 0; i < 6; i++ {
		ext := block.Extent{LBA: block.LBA(i) * block.LBA(slabSectors), Sectors: slabSectors}
		if err := c.Insert(ext, payload(int64(i), int(ext.Bytes()))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().SlabEvictions < 2 {
		t.Fatalf("evictions %+v", c.Stats())
	}
	// Oldest gone, newest present and correct.
	if _, full := readBack(t, c, block.Extent{LBA: 0, Sectors: slabSectors}); full {
		t.Fatal("oldest slab not evicted")
	}
	newest := block.Extent{LBA: 5 * block.LBA(slabSectors), Sectors: slabSectors}
	got, full := readBack(t, c, newest)
	if !full || !bytes.Equal(got, payload(5, int(newest.Bytes()))) {
		t.Fatal("newest data wrong after eviction")
	}
}

func TestLRUEvictionKeepsHotSlab(t *testing.T) {
	cfg := Config{SlabBytes: 1 * block.MiB, MapBytes: 1 * block.MiB, Policy: LRU}
	c := newCache(t, 1*block.MiB+block.BlockSize+3*block.MiB, cfg) // 3 slabs
	slabSectors := uint32(block.MiB / block.SectorSize)
	extA := block.Extent{LBA: 0, Sectors: slabSectors}
	extB := block.Extent{LBA: block.LBA(slabSectors), Sectors: slabSectors}
	_ = c.Insert(extA, payload(0, int(extA.Bytes())))
	_ = c.Insert(extB, payload(1, int(extB.Bytes())))
	// Touch A repeatedly so B becomes the LRU victim.
	for i := 0; i < 5; i++ {
		readBack(t, c, extA)
	}
	// Insert two more slab-sized extents, forcing evictions.
	for i := 2; i < 4; i++ {
		ext := block.Extent{LBA: block.LBA(i) * block.LBA(slabSectors), Sectors: slabSectors}
		_ = c.Insert(ext, payload(int64(i), int(ext.Bytes())))
	}
	if _, full := readBack(t, c, extA); !full {
		t.Fatal("hot slab evicted under LRU")
	}
	if _, full := readBack(t, c, extB); full {
		t.Fatal("cold slab survived under LRU")
	}
}

func TestPersistReload(t *testing.T) {
	dev := simdev.NewMem(64 * block.MiB)
	c, err := New(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ext := block.Extent{LBA: 1234, Sectors: 128}
	data := payload(9, int(ext.Bytes()))
	_ = c.Insert(ext, data)
	if err := c.Persist(); err != nil {
		t.Fatal(err)
	}
	// Reopen on the same device: map restored, data warm.
	c2, err := New(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, full := readBack(t, c2, ext)
	if !full || !bytes.Equal(got, data) {
		t.Fatal("persisted cache cold after reload")
	}
	// Eviction still cleans reloaded entries.
	if c2.Stats().MapExtents == 0 {
		t.Fatal("map empty after reload")
	}
}

func TestColdLoadOnGarbage(t *testing.T) {
	dev := simdev.NewMem(64 * block.MiB)
	_ = dev.WriteAt(payload(1, 8192), 0) // garbage where the map would be
	c, err := New(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().MapExtents != 0 {
		t.Fatal("garbage map loaded")
	}
}

func TestTooSmallRejected(t *testing.T) {
	if _, err := New(simdev.NewMem(2*block.MiB), Config{}); err == nil {
		t.Fatal("tiny device accepted")
	}
}

func TestOverwriteInsertServesNewest(t *testing.T) {
	c := newCache(t, 64*block.MiB, Config{})
	ext := block.Extent{LBA: 0, Sectors: 32}
	_ = c.Insert(ext, payload(1, int(ext.Bytes())))
	newer := payload(2, int(ext.Bytes()))
	_ = c.Insert(ext, newer)
	got, full := readBack(t, c, ext)
	if !full || !bytes.Equal(got, newer) {
		t.Fatal("stale insert served")
	}
}

// --- arena (multi-view) tests ---

// arenaFor builds an arena whose slab geometry is easy to reason
// about: slabBytes-sized slabs, minimal map reservation.
func arenaFor(t *testing.T, nSlabs int, slabBytes int64, policy Policy) (*Arena, simdev.Device) {
	t.Helper()
	cfg := Config{SlabBytes: slabBytes, MapBytes: block.BlockSize, Policy: policy}
	dev := simdev.NewMem(block.BlockSize + cfg.MapBytes + int64(nSlabs)*slabBytes)
	a, err := NewArena(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.slabs) != nSlabs {
		t.Fatalf("arena has %d slabs, want %d", len(a.slabs), nSlabs)
	}
	return a, dev
}

func fillSlabs(t *testing.T, v *Cache, seed int64, startLBA block.LBA, n int, slabBytes int64) {
	t.Helper()
	sectorsPerSlab := uint32(slabBytes >> block.SectorShift)
	for i := 0; i < n; i++ {
		ext := block.Extent{LBA: startLBA + block.LBA(uint32(i)*sectorsPerSlab), Sectors: sectorsPerSlab}
		if err := v.Insert(ext, payload(seed+int64(i), int(ext.Bytes()))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestArenaViewIsolation(t *testing.T) {
	a, _ := arenaFor(t, 8, 256<<10, FIFO)
	va := a.Open("a")
	vb := a.Open("b")
	ext := block.Extent{LBA: 100, Sectors: 64}
	da := payload(1, int(ext.Bytes()))
	db := payload(2, int(ext.Bytes()))
	if err := va.Insert(ext, da); err != nil {
		t.Fatal(err)
	}
	if err := vb.Insert(ext, db); err != nil {
		t.Fatal(err)
	}
	// Same vLBA, different views, different data.
	got, full := readBack(t, va, ext)
	if !full || !bytes.Equal(got, da) {
		t.Fatal("view a read wrong data")
	}
	got, full = readBack(t, vb, ext)
	if !full || !bytes.Equal(got, db) {
		t.Fatal("view b read wrong data")
	}
	// Invalidating a must not touch b.
	va.Invalidate(ext)
	if _, full := readBack(t, va, ext); full {
		t.Fatal("a still cached after invalidate")
	}
	if got, full := readBack(t, vb, ext); !full || !bytes.Equal(got, db) {
		t.Fatal("invalidate leaked across views")
	}
	// Reopening a name returns the same warm view.
	if a.Open("b") != vb {
		t.Fatal("Open(name) did not reattach")
	}
}

func TestArenaFairEviction(t *testing.T) {
	const slabBytes = 256 << 10
	a, _ := arenaFor(t, 8, slabBytes, FIFO)
	cold := a.Open("cold")
	hot := a.Open("hot")

	// Cold volume establishes a working set at its fair share (4 slabs).
	fillSlabs(t, cold, 100, 0, 4, slabBytes)
	coldBefore := cold.Stats()
	if coldBefore.OwnedSlabs != 4 {
		t.Fatalf("cold owns %d slabs, want 4", coldBefore.OwnedSlabs)
	}
	if coldBefore.FairShareSlabs != 4 {
		t.Fatalf("fair share = %d, want 4", coldBefore.FairShareSlabs)
	}

	// Hot volume churns the arena several times over.
	fillSlabs(t, hot, 200, 1<<20, 32, slabBytes)

	coldAfter := cold.Stats()
	if coldAfter.OwnedSlabs < coldBefore.FairShareSlabs {
		t.Fatalf("cold evicted below its floor: owns %d, floor %d",
			coldAfter.OwnedSlabs, coldBefore.FairShareSlabs)
	}
	// Cold's data is fully intact — every read hits.
	sectorsPerSlab := uint32(slabBytes >> block.SectorShift)
	for i := 0; i < 4; i++ {
		ext := block.Extent{LBA: block.LBA(uint32(i) * sectorsPerSlab), Sectors: sectorsPerSlab}
		got, full := readBack(t, cold, ext)
		if !full || !bytes.Equal(got, payload(100+int64(i), int(ext.Bytes()))) {
			t.Fatalf("cold slab %d lost or corrupted under hot churn", i)
		}
	}
	// Hot still made progress: it owns its share too.
	if hs := hot.Stats(); hs.OwnedSlabs != 4 {
		t.Fatalf("hot owns %d slabs, want 4", hs.OwnedSlabs)
	}
	if a.Stats().Evictions == 0 {
		t.Fatal("hot churn evicted nothing")
	}
}

func TestArenaSingleViewUsesWholePool(t *testing.T) {
	// With one view there is no sharing: it may fill every slab.
	const slabBytes = 256 << 10
	a, _ := arenaFor(t, 8, slabBytes, FIFO)
	v := a.Open("only")
	fillSlabs(t, v, 1, 0, 8, slabBytes)
	if st := v.Stats(); st.OwnedSlabs != 8 {
		t.Fatalf("single view owns %d slabs, want 8", st.OwnedSlabs)
	}
	// Overflow evicts its own oldest slab, not an error.
	fillSlabs(t, v, 50, 1<<20, 2, slabBytes)
	if st := v.Stats(); st.OwnedSlabs != 8 {
		t.Fatalf("after overflow view owns %d slabs, want 8", st.OwnedSlabs)
	}
}

func TestArenaPersistReloadMultiView(t *testing.T) {
	const slabBytes = 256 << 10
	cfg := Config{SlabBytes: slabBytes, MapBytes: 256 << 10}
	dev := simdev.NewMem(block.BlockSize + cfg.MapBytes + 8*slabBytes)
	a, err := NewArena(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	va, vb := a.Open("a"), a.Open("b")
	extA := block.Extent{LBA: 0, Sectors: 64}
	extB := block.Extent{LBA: 4096, Sectors: 64}
	da, db := payload(1, int(extA.Bytes())), payload(2, int(extB.Bytes()))
	if err := va.Insert(extA, da); err != nil {
		t.Fatal(err)
	}
	if err := vb.Insert(extB, db); err != nil {
		t.Fatal(err)
	}
	if err := a.Persist(); err != nil {
		t.Fatal(err)
	}

	// Reload on the same device: views come back warm, in any order.
	a2, err := NewArena(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vb2 := a2.Open("b")
	if got, full := readBack(t, vb2, extB); !full || !bytes.Equal(got, db) {
		t.Fatal("view b cold after reload")
	}
	va2 := a2.Open("a")
	if got, full := readBack(t, va2, extA); !full || !bytes.Equal(got, da) {
		t.Fatal("view a cold after reload")
	}
	// Cross-view leakage check: a must not see b's extent.
	if _, full := readBack(t, va2, extB); full {
		t.Fatal("view a sees view b's data after reload")
	}
}

func TestArenaReloadUnopenedViewSlabsReclaimable(t *testing.T) {
	const slabBytes = 256 << 10
	cfg := Config{SlabBytes: slabBytes, MapBytes: 256 << 10}
	dev := simdev.NewMem(block.BlockSize + cfg.MapBytes + 4*slabBytes)
	a, err := NewArena(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	old := a.Open("old")
	fillSlabs(t, old, 1, 0, 4, slabBytes)
	if err := a.Persist(); err != nil {
		t.Fatal(err)
	}

	// Reload; "old" never reopens. A new view can take over the whole
	// pool even though every slab was persisted as owned.
	a2, err := NewArena(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh := a2.Open("fresh")
	fillSlabs(t, fresh, 50, 1<<20, 4, slabBytes)
	if st := fresh.Stats(); st.OwnedSlabs != 4 {
		t.Fatalf("fresh owns %d slabs, want 4", st.OwnedSlabs)
	}
	// If "old" opens now it finds nothing (its slabs were recycled and
	// its map entries dropped in validation).
	old2 := a2.Open("old")
	if _, full := readBack(t, old2, block.Extent{LBA: 0, Sectors: 64}); full {
		t.Fatal("old view served data from recycled slabs")
	}
}

func TestArenaPurge(t *testing.T) {
	const slabBytes = 256 << 10
	a, _ := arenaFor(t, 4, slabBytes, FIFO)
	v := a.Open("v")
	w := a.Open("w")
	fillSlabs(t, v, 1, 0, 2, slabBytes)
	extW := block.Extent{LBA: 1 << 20, Sectors: 64}
	dw := payload(9, int(extW.Bytes()))
	if err := w.Insert(extW, dw); err != nil {
		t.Fatal(err)
	}
	a.Purge("v")
	if st := v.Stats(); st.OwnedSlabs != 0 || st.MapExtents != 0 {
		t.Fatalf("purge left state: %+v", st)
	}
	if _, full := readBack(t, v, block.Extent{LBA: 0, Sectors: 64}); full {
		t.Fatal("purged view still serves data")
	}
	if got, full := readBack(t, w, extW); !full || !bytes.Equal(got, dw) {
		t.Fatal("purge damaged sibling view")
	}
	// The purged view is still usable.
	if err := v.Insert(block.Extent{LBA: 0, Sectors: 64}, payload(3, 64*block.SectorSize)); err != nil {
		t.Fatal(err)
	}
}

func TestArenaStatsOccupancy(t *testing.T) {
	const slabBytes = 256 << 10
	a, _ := arenaFor(t, 8, slabBytes, FIFO)
	va := a.Open("a")
	fillSlabs(t, va, 1, 0, 2, slabBytes)
	a.Open("b")
	st := a.Stats()
	if len(st.Views) != 2 {
		t.Fatalf("views = %d, want 2", len(st.Views))
	}
	if st.Views[0].Volume != "a" || st.Views[0].Slabs != 2 || st.Views[0].Bytes != 2*slabBytes {
		t.Fatalf("occupancy a = %+v", st.Views[0])
	}
	if st.Views[1].Volume != "b" || st.Views[1].Slabs != 0 {
		t.Fatalf("occupancy b = %+v", st.Views[1])
	}
	if st.FairShareSlabs != 4 {
		t.Fatalf("fair share = %d, want 4", st.FairShareSlabs)
	}
}

func TestSizedConfigMatchesCoreMath(t *testing.T) {
	// 64 MiB device: map 8 MiB, slab stays 4 MiB (14 slabs >= 8).
	cfg := SizedConfig(64*block.MiB, FIFO)
	if cfg.MapBytes != 8*block.MiB || cfg.SlabBytes != 4*block.MiB {
		t.Fatalf("64MiB: %+v", cfg)
	}
	// 8 MiB device: map 1 MiB, slab halves until >= 8 slabs fit.
	cfg = SizedConfig(8*block.MiB, FIFO)
	if (8*block.MiB-cfg.MapBytes)/cfg.SlabBytes < 8 {
		t.Fatalf("8MiB: %+v holds too few slabs", cfg)
	}
	// 1 GiB device: map capped at 16 MiB.
	if cfg := SizedConfig(block.GiB, FIFO); cfg.MapBytes != 16*block.MiB {
		t.Fatalf("1GiB: %+v", cfg)
	}
}
