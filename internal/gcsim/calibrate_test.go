package gcsim

import (
	"fmt"
	"os"
	"testing"

	"lsvd/internal/workload"
)

// TestCalibrate prints the full Table 5 at a given scale; used to tune
// the synthetic trace parameters against the paper's rows. Enabled by
// GCSIM_CALIBRATE=scale.
func TestCalibrate(t *testing.T) {
	scaleEnv := os.Getenv("GCSIM_CALIBRATE")
	if scaleEnv == "" {
		t.Skip("set GCSIM_CALIBRATE=<scale> to run")
	}
	var scale float64
	fmt.Sscanf(scaleEnv, "%f", &scale)
	cfg := Defaults(scale)
	for _, spec := range workload.PaperTraces {
		nm, err := Simulate(ctx, spec, NoMerge, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Simulate(ctx, spec, Merge, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Simulate(ctx, spec, Defrag, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%s writeGB=%6.2f ext(nm/m/d)=%7d/%7d/%7d WAF(nm/m/d)=%.2f/%.2f/%.2f merge=%.2f gc=%d\n",
			spec.ID, m.WriteGB, nm.Extents, m.Extents, d.Extents, nm.WAF, m.WAF, d.WAF, m.MergeRat, m.GCRuns)
	}
}
